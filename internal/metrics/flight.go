package metrics

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"rockcress/internal/trace"
)

// Flight is the flight recorder: a bounded ring of the most recent telemetry
// windows (fed by the trace.Sampler's Retain hook) plus a bounded ring of
// rare-event notes (fault injections, replay rungs, checkpoint publishes,
// reroutes, watchdog trips). When a run dies badly — watchdog trip, wall
// budget, contained crash, SIGQUIT — Dump writes the rings plus a machine
// snapshot as one forensic JSON bundle.
//
// Notes come only from serial, rare machine paths (the same sites that emit
// trace.Recorder events), never from the per-instruction hot path, so the
// recorder costs nothing in steady state. All methods are nil-safe and
// mutex-protected: the sampler feeds windows from the run goroutine while a
// SIGQUIT handler may dump from another.
type Flight struct {
	mu      sync.Mutex
	windows []FlightWindow
	wHead   int
	wLen    int
	notes   []FlightNote
	nHead   int
	nLen    int
	run     string
	attempt int
	dumps   int
	seq     int
}

// FlightWindow is one retained telemetry window, tagged with the run it came
// from so interleaved harness sweeps stay attributable.
type FlightWindow struct {
	Run     string       `json:"run,omitempty"`
	Attempt int          `json:"attempt,omitempty"`
	Window  trace.Window `json:"window"`
}

// FlightNote is one rare-event record.
type FlightNote struct {
	Cycle   int64  `json:"cycle"`
	Kind    string `json:"kind"`
	Detail  string `json:"detail,omitempty"`
	Run     string `json:"run,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
}

// Bundle is the on-disk forensic dump format (see ReadBundle).
type Bundle struct {
	Schema    int            `json:"schema"`
	Reason    string         `json:"reason"`
	WrittenAt time.Time      `json:"written_at"`
	Run       string         `json:"run,omitempty"`
	Attempt   int            `json:"attempt,omitempty"`
	Error     string         `json:"error,omitempty"`
	TileState string         `json:"tile_state,omitempty"`
	Machine   *MachineSnap   `json:"machine,omitempty"`
	Windows   []FlightWindow `json:"windows"`
	Notes     []FlightNote   `json:"notes"`
}

const (
	defaultWindowCap = 64
	defaultNoteCap   = 256
)

// NewFlight creates a flight recorder with the default ring capacities.
func NewFlight() *Flight {
	return &Flight{
		windows: make([]FlightWindow, defaultWindowCap),
		notes:   make([]FlightNote, defaultNoteCap),
	}
}

// SetRun tags subsequently retained windows and notes with a run key (e.g.
// "gemm/V4") and ladder attempt number.
func (f *Flight) SetRun(run string, attempt int) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.run, f.attempt = run, attempt
	f.mu.Unlock()
}

// Retain keeps one telemetry window, tagged with the current run. Its
// signature matches trace.Config.Retain.
func (f *Flight) Retain(w trace.Window) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.retainLocked(f.run, f.attempt, w)
	f.mu.Unlock()
}

// RetainKeyed keeps a window under an explicit run key — for harness sweeps
// where several machines sample concurrently and the ambient SetRun key
// would misattribute windows.
func (f *Flight) RetainKeyed(run string, attempt int, w trace.Window) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.retainLocked(run, attempt, w)
	f.mu.Unlock()
}

func (f *Flight) retainLocked(run string, attempt int, w trace.Window) {
	i := (f.wHead + f.wLen) % len(f.windows)
	f.windows[i] = FlightWindow{Run: run, Attempt: attempt, Window: w}
	if f.wLen < len(f.windows) {
		f.wLen++
	} else {
		f.wHead = (f.wHead + 1) % len(f.windows)
	}
}

// Note records one rare event at a simulated cycle.
func (f *Flight) Note(cycle int64, kind, detail string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	i := (f.nHead + f.nLen) % len(f.notes)
	f.notes[i] = FlightNote{Cycle: cycle, Kind: kind, Detail: detail,
		Run: f.run, Attempt: f.attempt}
	if f.nLen < len(f.notes) {
		f.nLen++
	} else {
		f.nHead = (f.nHead + 1) % len(f.notes)
	}
	f.mu.Unlock()
}

// Counts reports how many windows and notes are currently retained and how
// many bundles have been dumped.
func (f *Flight) Counts() (windows, notes, dumps int) {
	if f == nil {
		return 0, 0, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.wLen, f.nLen, f.dumps
}

// snapshot copies the rings oldest-first.
func (f *Flight) snapshot() (ws []FlightWindow, ns []FlightNote, run string, attempt int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	ws = make([]FlightWindow, 0, f.wLen)
	for i := 0; i < f.wLen; i++ {
		ws = append(ws, f.windows[(f.wHead+i)%len(f.windows)])
	}
	ns = make([]FlightNote, 0, f.nLen)
	for i := 0; i < f.nLen; i++ {
		ns = append(ns, f.notes[(f.nHead+i)%len(f.notes)])
	}
	return ws, ns, f.run, f.attempt
}

// Dump writes a bundle into dir and returns its path. reason is a short
// slug ("watchdog", "wall_budget", "crash", "sigquit"); runErr and tileState
// give the error and diagnostic dump if the run died with one; snap is the
// live machine heatmap if a machine is bound.
func (f *Flight) Dump(dir, reason string, runErr error, tileState string, snap *MachineSnap) (string, error) {
	if f == nil || dir == "" {
		return "", nil
	}
	ws, ns, run, attempt := f.snapshot()
	b := Bundle{
		Schema:    1,
		Reason:    reason,
		WrittenAt: time.Now().UTC(),
		Run:       run,
		Attempt:   attempt,
		TileState: tileState,
		Machine:   snap,
		Windows:   ws,
		Notes:     ns,
	}
	if runErr != nil {
		b.Error = runErr.Error()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	f.mu.Lock()
	f.seq++
	seq := f.seq
	f.mu.Unlock()
	name := fmt.Sprintf("flight-%s-%d-%03d.json", reason, time.Now().UnixMilli(), seq)
	path := filepath.Join(dir, name)
	data, err := json.MarshalIndent(&b, "", " ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	f.mu.Lock()
	f.dumps++
	f.mu.Unlock()
	return path, nil
}

// ReadBundle loads a dumped flight bundle (rockdoctor's reader).
func ReadBundle(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: not a flight bundle: %w", path, err)
	}
	if b.Schema != 1 {
		return nil, fmt.Errorf("%s: unsupported flight bundle schema %d", path, b.Schema)
	}
	return &b, nil
}
