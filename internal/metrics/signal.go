package metrics

import (
	"os"
	"os/signal"
	"syscall"
)

// DumpOnQuit installs a SIGQUIT handler that writes a flight bundle (reason
// "sigquit") and keeps the process running — a live forensic snapshot of a
// sweep you suspect is wedged, without killing it. The returned stop
// function uninstalls the handler. Go's default SIGQUIT behavior (goroutine
// dump + exit) is replaced while installed; send the signal twice only if
// you actually want the process gone (the second lands after a dump and
// still just dumps — use SIGINT/SIGTERM to stop the run).
// DumpOnInterrupt installs a SIGINT observer that writes one flight bundle
// (reason "sigint") on the FIRST interrupt and then uninstalls itself. It
// observes, never consumes: lifecycle.WithSignals still sees the same
// signal and cancels the run, so the exit path (status 130, journal hints)
// is unchanged — the bundle is a forensic record of what the run was doing
// at the moment the user gave up on it. Later interrupts (the "kill it
// now" double-tap) dump nothing: a second bundle would race process death
// and slow down the exit the user is demanding.
func DumpOnInterrupt(p *Plane) (stop func()) {
	if p == nil {
		return func() {}
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	done := make(chan struct{})
	go func() {
		select {
		case <-ch:
			_, _ = p.DumpFlight("sigint", nil, "")
		case <-done:
		}
		signal.Stop(ch)
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}

func DumpOnQuit(p *Plane) (stop func()) {
	if p == nil {
		return func() {}
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-ch:
				_, _ = p.DumpFlight("sigquit", nil, "")
			case <-done:
				return
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}
