package metrics

import (
	"os"
	"os/signal"
	"syscall"
)

// DumpOnQuit installs a SIGQUIT handler that writes a flight bundle (reason
// "sigquit") and keeps the process running — a live forensic snapshot of a
// sweep you suspect is wedged, without killing it. The returned stop
// function uninstalls the handler. Go's default SIGQUIT behavior (goroutine
// dump + exit) is replaced while installed; send the signal twice only if
// you actually want the process gone (the second lands after a dump and
// still just dumps — use SIGINT/SIGTERM to stop the run).
func DumpOnQuit(p *Plane) (stop func()) {
	if p == nil {
		return func() {}
	}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-ch:
				_, _ = p.DumpFlight("sigquit", nil, "")
			case <-done:
				return
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}
