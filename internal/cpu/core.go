// Package cpu models one Rockcress tile's processor: a single-issue,
// in-order-issue / out-of-order-writeback core (scoreboarded register file,
// small load queue, non-blocking stores) with the three vector-group roles
// of §3.2 layered on top. A core can be an independent manycore CPU, the
// scalar core of a vector group, the expander (fetches microthread
// instructions and forwards them on the inet), or a plain vector lane whose
// frontend and I-cache are disabled.
package cpu

import (
	"fmt"
	"math"

	"rockcress/internal/causal"
	"rockcress/internal/config"
	"rockcress/internal/inet"
	"rockcress/internal/isa"
	"rockcress/internal/mem"
	"rockcress/internal/msg"
	"rockcress/internal/stats"
)

// pendingLoad marks a register whose value is still in flight from memory.
const pendingLoad = math.MaxInt64 / 2

// Mode is a core's current execution mode.
type Mode uint8

const (
	// ModeIndependent is plain manycore (MIMD) execution.
	ModeIndependent Mode = iota
	// ModeScalar leads a vector group: independent frontend, vissue/vload.
	ModeScalar
	// ModeVector executes the group's SIMD stream (expander or plain lane).
	ModeVector
)

func (m Mode) String() string {
	switch m {
	case ModeIndependent:
		return "independent"
	case ModeScalar:
		return "scalar"
	case ModeVector:
		return "vector"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

type coreState uint8

const (
	stRun coreState = iota
	stFormGroup
	stBarrier
)

// Env is the machine-side interface a core drives: NoC injection, LLC bank
// lookup, group formation rendezvous, the global barrier, and error
// reporting. Package machine implements it.
type Env interface {
	// TrySend injects a message at this core's tile; false = inject full.
	TrySend(m msg.Message) bool
	// LLCNodeFor returns the NoC node of the bank owning addr's line.
	LLCNodeFor(addr uint32) int
	// GroupArrive registers the tile at its group's formation rendezvous
	// and returns a ticket; GroupFormed reports completion of that ticket.
	GroupArrive(tile int) int64
	GroupFormed(tile int, ticket int64) bool
	// BarrierArrive registers at the global barrier; BarrierDone polls.
	BarrierArrive(tile int) int64
	BarrierDone(ticket int64) bool
	// NotifyHalt tells the machine this core executed halt.
	NotifyHalt(tile int)
	// NumGroups returns the number of configured vector groups (CSR read).
	NumGroups() int
	// ArmCheckpoint asks the machine to snapshot global memory at the next
	// barrier release (the csrw ckpt instruction; a no-op on machines not
	// running with checkpoints enabled).
	ArmCheckpoint()
	// Error reports a fatal simulation error (program bug).
	Error(err error)
}

// Core is one tile's processor.
type Core struct {
	ID   int
	cfg  config.Manycore
	prog *isa.Program
	low  *Lowered // shared pre-lowered program (see lower.go)
	env  Env
	st   *stats.Core
	spad *mem.Scratchpad

	// decoded is the core's decode cache: decoded[pc] means the pre-lowered
	// entry for pc is held decoded, which is valid exactly while the icache
	// line backing pc stays resident (the eviction hook clears the line's
	// PCs). It survives mode switches and ForceDisband — decode state is
	// tied to icache residency, not to the core's role. Purely a model
	// (timing-neutral): the shared Lowered table itself is immutable.
	decoded []bool

	// Static group assignment (nil when the tile is not in any group).
	group   *config.Group
	laneIdx int // row-major lane index; -1 when not a lane
	inQ     *inet.Queue
	outQs   []*inet.Queue // children in the forwarding tree

	mode    Mode
	state   coreState
	ticket  int64
	halted  bool
	dead    bool // killed by fault injection (halted is also set)
	blowUp  bool // armed injected panic; fires on the next Tick
	predOn  bool
	mtCount int64

	// Architectural state.
	pc      int
	intRegs [isa.NumIntRegs]uint32
	fpRegs  [isa.NumFpRegs]float32
	vecRegs [isa.NumVecRegs][]float32

	// Scoreboard: cycle when each register's value becomes usable.
	intReady [isa.NumIntRegs]int64
	fpReady  [isa.NumFpRegs]int64
	vecReady [isa.NumVecRegs]int64
	// Bit i set when register i awaits a memory response (stall classing).
	intPending uint32
	fpPending  uint32

	// Frontend.
	icache       *ICache
	fetchReadyAt int64
	fetchCharged bool

	// Load queue and long-latency units.
	lq           []lqEntry
	divBusyUntil int64

	// Expander microthread state.
	mtActive bool
	vpc      int

	// issueSlot, when set, receives the number of instructions issued each
	// Tick (the machine's watchdog meter). The slot is owned by this core.
	issueSlot *int64

	// Causal recording (nil when off): crec receives one resource class
	// per accounted cycle; cclass is the class issued work counts toward
	// (scalar or vector, fixed by the tile's static role).
	crec   *causal.TileRec
	cclass causal.Class

	// parkedKind is the stall kind the engine's shard parking will back-fill
	// with (recorded by Park, consumed by CatchUp).
	parkedKind stats.StallKind

	// Issue-stall stash: when the tick at cycle stallAt ended in an issue
	// stall the park probe can reason about, the tick records it here so
	// Park needs no re-derivation (the tick already classified the stall).
	// stallWake is the first cycle the blocker can clear (MaxInt64 when
	// only a mesh delivery resolves it); stallCheck selects a same-shard
	// condition Park must re-verify live, because a shard member ticking
	// after this core may already have cleared it.
	stallAt    int64 // cycle the stash was recorded; valid for that tick only
	stallKind  stats.StallKind
	stallWake  int64
	stallCheck uint8

	// watchAddr, when nonzero, logs global stores to that address (the old
	// ROCKTRACE=<addr> debugging aid, now per-instance).
	watchAddr uint32
}

// stallCheck values: the same-shard condition Park re-verifies before
// trusting a stashed backpressure stall (see Core.Park).
const (
	checkNone    uint8 = iota // stallWake alone decides
	checkSend                 // re-verify the expander queue is still full
	checkForward              // re-verify a child queue is still full
)

type lqEntry struct {
	busy bool
	isFp bool
	reg  uint8
}

// New builds a core around a pre-lowered program (LowerProgram; shared by
// every core of a machine). group/laneIdx describe the tile's static place
// in the machine's group layout (lane -1 when the tile is the scalar core or
// in no group); inQ and outQs are its inet wiring. The only failure is a bad
// icache geometry, which is configuration input.
func New(id int, cfg config.Manycore, low *Lowered, env Env, st *stats.Core,
	spad *mem.Scratchpad, group *config.Group, laneIdx int, inQ *inet.Queue, outQs []*inet.Queue) (*Core, error) {
	ic, err := NewICache(cfg.ICacheBytes, cfg.ICacheWays, cfg.CacheLineBytes)
	if err != nil {
		return nil, err
	}
	c := &Core{
		ID: id, cfg: cfg, prog: low.Prog, low: low, env: env, st: st, spad: spad,
		group: group, laneIdx: laneIdx, inQ: inQ, outQs: outQs,
		predOn:  true,
		icache:  ic,
		lq:      make([]lqEntry, cfg.LoadQueueEntries),
		decoded: make([]bool, len(low.Prog.Code)),
		stallAt: -1,
	}
	// Decode-cache coherence: evicting an icache line drops the decoded
	// entries for the instructions it backed.
	lineInstrs := cfg.CacheLineBytes / 4
	ic.SetEvictHook(func(lineAddr uint32) {
		base := int(lineAddr / 4)
		for i := 0; i < lineInstrs; i++ {
			if pc := base + i; pc < len(c.decoded) {
				c.decoded[pc] = false
			}
		}
	})
	for i := range c.vecRegs {
		c.vecRegs[i] = make([]float32, cfg.SIMDWidth)
	}
	if group != nil {
		st.Hop = group.Hop[id]
	} else {
		st.Hop = -1
	}
	return c, nil
}

// Halted reports whether the core has executed halt.
func (c *Core) Halted() bool { return c.halted }

// Dead reports whether the core was killed by fault injection.
func (c *Core) Dead() bool { return c.dead }

// InBarrier reports whether the core is parked at the global barrier (the
// machine adjusts the barrier's arrival count when such a core dies or is
// forcibly disbanded).
func (c *Core) InBarrier() bool { return !c.halted && c.state == stBarrier }

// Kill powers the core off (fault injection). In-flight loads are discarded
// — responses to a dead tile are dropped, not errors.
func (c *Core) Kill() {
	c.dead = true
	c.halted = true
	for i := range c.lq {
		c.lq[i].busy = false
	}
}

// ForceHalt stops the core without marking it dead (a survivor of a broken
// group with no recovery point).
func (c *Core) ForceHalt() { c.halted = true }

// ForceDisband yanks the core out of its vector group after a member died:
// whatever it was doing (lane execution, barrier wait, group formation) is
// abandoned and it resumes in independent MIMD mode at pc (the program's
// recovery point). The inet queue is cleared — the group's instruction
// stream is dead.
func (c *Core) ForceDisband(now int64, pc int) {
	if c.halted {
		return
	}
	if c.inQ != nil {
		c.inQ.Reset()
	}
	c.state = stRun
	c.mode = ModeIndependent
	c.mtActive = false
	c.predOn = true
	c.setPC(pc)
	c.fetchReadyAt = now + 1
}

// StickInet freezes the core's inet input queue until the given cycle
// (fault injection). Reports whether the tile has an inet queue to stick.
func (c *Core) StickInet(until int64) bool {
	if c.inQ == nil {
		return false
	}
	c.inQ.StickUntil(until)
	return true
}

// Mode returns the core's current execution mode.
func (c *Core) Mode() Mode { return c.mode }

// PC returns the current program counter (meaningful outside vector mode).
func (c *Core) PC() int { return c.pc }

// IntReg returns integer register r's current value (test hook).
func (c *Core) IntReg(r isa.Reg) uint32 { return c.intRegs[r] }

// FpReg returns FP register r's current value (test hook).
func (c *Core) FpReg(r isa.FReg) float32 { return c.fpRegs[r] }

// SetIntReg initializes a register before the run (launcher arguments).
func (c *Core) SetIntReg(r isa.Reg, v uint32) {
	if r != isa.X0 {
		c.intRegs[r] = v
	}
}

func (c *Core) fail(format string, args ...any) {
	c.env.Error(fmt.Errorf("core %d (pc %d, mode %s): %s", c.ID, c.pc, c.mode,
		fmt.Sprintf(format, args...)))
	c.halted = true
}

func (c *Core) setPC(pc int) {
	c.pc = pc
	c.fetchCharged = false
}

func (c *Core) setVPC(pc int) {
	c.vpc = pc
	c.fetchCharged = false
}

// SetIssueSlot points the core at a counter that accumulates its issued
// instructions incrementally, so the machine's progress watchdog reads a
// running total instead of rescanning every stall histogram.
func (c *Core) SetIssueSlot(p *int64) { c.issueSlot = p }

// SetWatchAddr arms global-store logging for one address (0 disarms). The
// per-instance replacement for the old ROCKTRACE=<addr> env hook.
func (c *Core) SetWatchAddr(addr uint32) { c.watchAddr = addr }

// InetHighWater returns the deepest occupancy the core's inet input queue
// ever reached (0 when the tile has no queue).
func (c *Core) InetHighWater() int {
	if c.inQ == nil {
		return 0
	}
	return c.inQ.HighWater()
}

// ArmPanic makes the core's next Tick panic — a simulated software defect
// (fault.PanicTile). It fires inside the engine's parallel core phase, the
// same place a real bug would, so the chaos harness exercises the full
// crash-containment path: worker recover, stack capture, RunError
// attribution.
func (c *Core) ArmPanic() { c.blowUp = true }

// Tick advances the core one cycle.
func (c *Core) Tick(now int64) {
	if c.blowUp {
		c.blowUp = false
		panic(fmt.Sprintf("cpu: injected panic on tile %d at cycle %d", c.ID, now))
	}
	if c.crec != nil {
		c.tickCausal(now)
		return
	}
	if c.issueSlot == nil {
		c.tick(now)
		return
	}
	pre := c.st.StallCycles[stats.StallNone]
	c.tick(now)
	*c.issueSlot += c.st.StallCycles[stats.StallNone] - pre
}

// SetCausal attaches the causal profiler's per-tile recorder. compute is
// the class issued cycles count toward. Set before the first Tick; with no
// recorder attached the hot path pays one nil check.
func (c *Core) SetCausal(rec *causal.TileRec, compute causal.Class) {
	c.crec = rec
	c.cclass = compute
}

// tickCausal wraps tick with causal classification: snapshot the stall
// histogram, tick, and account the cycle to the resource class behind
// whichever counter moved. Purely observational — tick itself is
// untouched, so cycle counts are identical with recording on or off.
func (c *Core) tickCausal(now int64) {
	preStalls := c.st.StallCycles
	preCycles := c.st.Cycles
	preState := c.state
	c.tick(now)
	if c.issueSlot != nil {
		*c.issueSlot += c.st.StallCycles[stats.StallNone] - preStalls[stats.StallNone]
	}
	if c.st.Cycles == preCycles {
		return // halted: no cycle accounted
	}
	for k := range c.st.StallCycles {
		if c.st.StallCycles[k] != preStalls[k] {
			c.crec.Tick(c.causalClass(stats.StallKind(k), preState))
			return
		}
	}
	// Transition cycles (a barrier or formation rendezvous resolving) book
	// no stall; they belong to the wait that just ended.
	if preState == stBarrier || preState == stFormGroup {
		c.crec.Tick(causal.ClassBarrier)
		return
	}
	c.crec.Tick(c.cclass)
}

// causalClass maps one accounted stall kind to its resource class.
func (c *Core) causalClass(kind stats.StallKind, state coreState) causal.Class {
	switch kind {
	case stats.StallFrame:
		if c.spad != nil && (c.spad.Poisoned() || c.spad.Replaying()) {
			return causal.ClassRecovery
		}
		return causal.ClassFrame
	case stats.StallInet:
		return causal.ClassInet
	case stats.StallBackpressure:
		return causal.ClassBackpressure
	case stats.StallOther:
		if state == stBarrier || state == stFormGroup {
			return causal.ClassBarrier
		}
		// RAW hazards, fetch, branch bubbles: core-local compute.
		return c.cclass
	}
	return c.cclass // StallNone: an instruction issued
}

func (c *Core) tick(now int64) {
	if c.halted {
		return
	}
	c.st.Cycles++
	switch c.state {
	case stFormGroup:
		if c.env.GroupFormed(c.ID, c.ticket) {
			c.state = stRun
			c.enterGroupRole(now)
		} else {
			c.st.AddStall(stats.StallOther)
		}
		return
	case stBarrier:
		if c.env.BarrierDone(c.ticket) {
			c.state = stRun
			c.setPC(c.pc + 1)
		} else {
			c.st.AddStall(stats.StallOther)
		}
		return
	}
	switch c.mode {
	case ModeIndependent, ModeScalar:
		c.tickFrontend(now)
	case ModeVector:
		if c.isExpander() {
			c.tickExpander(now)
		} else {
			c.tickLane(now)
		}
	}
}

func (c *Core) isExpander() bool {
	return c.group != nil && c.group.Expander == c.ID
}

func (c *Core) numGroups() int { return c.env.NumGroups() }

// enterGroupRole switches the core into its static role once the group's
// formation rendezvous completes (the vconfig write, §2.1).
func (c *Core) enterGroupRole(now int64) {
	switch {
	case c.group == nil:
		c.fail("vconfig write on a tile outside any group")
	case c.group.Scalar == c.ID:
		c.mode = ModeScalar
		c.setPC(c.pc + 1)
	default:
		// Vector lane (possibly the expander): frontend and I-cache off.
		c.mode = ModeVector
		c.mtActive = false
		c.predOn = true
	}
}

// leaveVectorMode returns a lane to independent execution at pc (devec).
func (c *Core) leaveVectorMode(now int64, pc int) {
	c.mode = ModeIndependent
	c.mtActive = false
	c.predOn = true
	c.setPC(pc)
	c.fetchReadyAt = now + 1
}

// tickFrontend fetches and issues for independent and scalar cores.
func (c *Core) tickFrontend(now int64) {
	if now < c.fetchReadyAt {
		c.st.AddStall(stats.StallOther)
		return
	}
	if c.pc < 0 || c.pc >= len(c.prog.Code) {
		c.fail("pc out of range")
		return
	}
	if !c.fetchCharged {
		c.fetchCharged = true
		c.st.ICacheAccesses++
		if !c.icache.Access(uint32(c.pc) * 4) {
			c.st.ICacheMisses++
			c.fetchReadyAt = now + int64(c.cfg.ICacheMissLat)
			c.st.AddStall(stats.StallOther)
			return
		}
	}
	c.decoded[c.pc] = true
	ok, stall := c.issueAt(now, c.pc)
	if !ok {
		c.st.AddStall(stall)
		return
	}
	c.st.AddStall(stats.StallNone)
}

// tickExpander runs the expander: it consumes microthread-start messages
// from the scalar core, fetches microthread instructions from its own
// I-cache, executes them as lane zero, and forwards them down the tree.
func (c *Core) tickExpander(now int64) {
	if !c.mtActive {
		if !c.inQ.Ready(now) {
			c.st.AddStall(stats.StallInet)
			return
		}
		it := c.inQ.Peek()
		switch it.Kind {
		case inet.ItemMTStart:
			c.inQ.Pop()
			c.mtActive = true
			c.setVPC(int(it.PC))
			c.mtCount++
			c.st.Microthreads++
			c.st.AddStall(stats.StallOther) // pipeline redirect bubble
		case inet.ItemDevec:
			if !c.forwardAll(now, it) {
				c.noteStall(now, stats.StallBackpressure, math.MaxInt64, checkForward)
				c.st.AddStall(stats.StallBackpressure)
				return
			}
			c.inQ.Pop()
			c.leaveVectorMode(now, int(it.PC))
			c.st.AddStall(stats.StallOther)
		default:
			c.fail("expander received %s outside a microthread", it.Kind)
		}
		return
	}
	if now < c.fetchReadyAt {
		c.st.AddStall(stats.StallOther)
		return
	}
	if c.vpc < 0 || c.vpc >= len(c.prog.Code) {
		c.fail("microthread pc %d out of range", c.vpc)
		return
	}
	if !c.fetchCharged {
		c.fetchCharged = true
		c.st.ICacheAccesses++
		if !c.icache.Access(uint32(c.vpc) * 4) {
			c.st.ICacheMisses++
			c.fetchReadyAt = now + int64(c.cfg.ICacheMissLat)
			c.st.AddStall(stats.StallOther)
			return
		}
	}
	c.decoded[c.vpc] = true
	e := &c.low.ents[c.vpc]
	switch {
	case e.vend:
		c.mtActive = false
		c.st.CountClass(uint8(isa.ClassVecCtl))
		c.st.AddStall(stats.StallNone)
	case e.ctl != nil:
		// Executed locally, never forwarded; the expander pauses fetch
		// until the branch resolves (§3.2), hence the penalty either way.
		ok, stall := c.issueAt(now, c.vpc)
		if !ok {
			c.st.AddStall(stall)
			return
		}
		c.fetchReadyAt = now + int64(c.cfg.BranchPenalty)
		c.st.AddStall(stats.StallNone)
	case !e.allowMT:
		c.fail("op %s not allowed in a microthread", c.prog.Code[c.vpc].Op)
	default:
		if !c.canForwardAll() {
			c.noteStall(now, stats.StallBackpressure, math.MaxInt64, checkForward)
			c.st.AddStall(stats.StallBackpressure)
			return
		}
		vpc := c.vpc
		ok, stall := c.issueAt(now, vpc)
		if !ok {
			c.st.AddStall(stall)
			return
		}
		// Lanes re-dispatch the forwarded instruction through the shared
		// pre-lowered table by PC; the instruction body never travels.
		c.mustForwardAll(now, inet.Item{Kind: inet.ItemInstr, PC: int32(vpc)})
		c.setVPC(vpc + 1)
		c.st.AddStall(stats.StallNone)
	}
}

// tickLane runs a plain vector lane: execute whatever arrives on the inet
// and forward it to the children. Lanes never fetch and never diverge.
func (c *Core) tickLane(now int64) {
	if !c.inQ.Ready(now) {
		c.st.AddStall(stats.StallInet)
		return
	}
	it := c.inQ.Peek()
	switch it.Kind {
	case inet.ItemDevec:
		if !c.forwardAll(now, it) {
			c.noteStall(now, stats.StallBackpressure, math.MaxInt64, checkForward)
			c.st.AddStall(stats.StallBackpressure)
			return
		}
		c.inQ.Pop()
		c.leaveVectorMode(now, int(it.PC))
		c.st.AddStall(stats.StallOther)
	case inet.ItemInstr:
		if !c.canForwardAll() {
			c.noteStall(now, stats.StallBackpressure, math.MaxInt64, checkForward)
			c.st.AddStall(stats.StallBackpressure)
			return
		}
		ok, stall := c.issueAt(now, int(it.PC))
		if !ok {
			c.st.AddStall(stall)
			return
		}
		c.mustForwardAll(now, it)
		c.inQ.Pop()
		c.st.InetReceives++
		c.st.AddStall(stats.StallNone)
	default:
		c.fail("vector lane received %s", it.Kind)
	}
}

// canForwardAll reports whether every child queue has room.
func (c *Core) canForwardAll() bool {
	for _, q := range c.outQs {
		if !q.CanSend() {
			return false
		}
	}
	return true
}

// forwardAll sends to all children if possible, else to none.
func (c *Core) forwardAll(now int64, it inet.Item) bool {
	if !c.canForwardAll() {
		return false
	}
	c.mustForwardAll(now, it)
	return true
}

func (c *Core) mustForwardAll(now int64, it inet.Item) {
	for _, q := range c.outQs {
		q.Send(now, it)
		c.st.InetForwards++
	}
}

// OnLoadResp delivers a memory word to the load queue (machine callback).
func (c *Core) OnLoadResp(now int64, m *msg.Message) {
	if c.dead {
		return // response raced the tile's death; drop it
	}
	if m.LQSlot < 0 || m.LQSlot >= len(c.lq) || !c.lq[m.LQSlot].busy {
		c.fail("load response for idle LQ slot %d", m.LQSlot)
		return
	}
	e := &c.lq[m.LQSlot]
	if e.isFp {
		c.fpRegs[e.reg] = math.Float32frombits(m.Vals[0])
		c.fpReady[e.reg] = now + 1
		c.fpPending &^= 1 << e.reg
	} else if isa.Reg(e.reg) != isa.X0 {
		c.intRegs[e.reg] = m.Vals[0]
		c.intReady[e.reg] = now + 1
		c.intPending &^= 1 << e.reg
	}
	e.busy = false
}

// DebugState renders a one-line diagnostic of the core's current state.
func (c *Core) DebugState() string {
	lq := 0
	for i := range c.lq {
		if c.lq[i].busy {
			lq++
		}
	}
	inq := -1
	if c.inQ != nil {
		inq = c.inQ.Len()
	}
	return fmt.Sprintf("core %d mode=%s state=%d pc=%d vpc=%d mt=%v pred=%v lq=%d inq=%d frames(head=%d ready=%v)",
		c.ID, c.mode, c.state, c.pc, c.vpc, c.mtActive, c.predOn, lq, inq,
		c.spad.HeadSeq(), c.spad.NumFrames() > 0 && c.spad.FrameReady())
}

// Quiesced reports whether the core has no in-flight loads (drain check).
func (c *Core) Quiesced() bool {
	for i := range c.lq {
		if c.lq[i].busy {
			return false
		}
	}
	return true
}

// IdleUntil reports whether ticking the core is a pure stall until some
// future cycle: quiet means every tick before `until` would only record
// one stall cycle of the returned kind. until is math.MaxInt64 when the
// wake depends on another component (a group peer arriving, a barrier
// release, an inet send); the machine's fast-forward horizon is then set
// by whoever acts. Cores attempting to issue are conservatively reported
// active: scoreboard and frame waits are resolved by mesh traffic, which
// keeps the machine out of fast-forward on its own.
func (c *Core) IdleUntil(now int64) (quiet bool, until int64, kind stats.StallKind) {
	if c.halted {
		return true, math.MaxInt64, stats.StallNone
	}
	switch c.state {
	case stFormGroup:
		if c.env.GroupFormed(c.ID, c.ticket) {
			return false, 0, 0
		}
		return true, math.MaxInt64, stats.StallOther
	case stBarrier:
		if c.env.BarrierDone(c.ticket) {
			return false, 0, 0
		}
		return true, math.MaxInt64, stats.StallOther
	}
	waitInet := func() (bool, int64, stats.StallKind) {
		if c.inQ.Ready(now) {
			return false, 0, 0
		}
		at, ok := c.inQ.ReadyAt()
		if !ok {
			return true, math.MaxInt64, stats.StallInet
		}
		return true, at, stats.StallInet
	}
	switch c.mode {
	case ModeIndependent, ModeScalar:
		if now < c.fetchReadyAt {
			return true, c.fetchReadyAt, stats.StallOther
		}
	case ModeVector:
		if c.isExpander() {
			if !c.mtActive {
				return waitInet()
			}
			if now < c.fetchReadyAt {
				return true, c.fetchReadyAt, stats.StallOther
			}
		} else {
			return waitInet()
		}
	}
	return false, 0, 0
}

// SkipIdle accounts for n skipped cycles of a pure stall of the given kind
// (idle fast-forward backfill). It must only be called with the kind a
// preceding IdleUntil returned, and leaves every counter exactly as n
// individual Ticks would have.
func (c *Core) SkipIdle(n int64, kind stats.StallKind) {
	if c.halted || n <= 0 {
		return
	}
	c.st.Cycles += n
	c.st.AddStallN(kind, n)
	if c.crec != nil {
		c.crec.AddN(c.causalClass(kind, c.state), n)
	}
}

// Propose advances the core one cycle (sim.Component). Cores in different
// shards share no same-cycle state: vector groups are co-sharded with
// their inet wiring, and everything cross-shard a core touches (mesh
// injection, barrier arrival counts) is router-disjoint or atomic.
func (c *Core) Propose(now int64) { c.Tick(now) }

// Commit is a no-op: a core's cycle has no deferred writes.
func (c *Core) Commit(now int64) {}

// Quiescent implements the sim.Component hint via IdleUntil.
func (c *Core) Quiescent(now int64) (bool, int64) {
	quiet, until, _ := c.IdleUntil(now)
	return quiet, until
}

// Park implements sim.Sleeper: after ticking at now, the core may drop out
// of the tick loop when every following cycle is a pure stall. The stall
// kind is recorded so CatchUp can back-fill the histogram exactly as the
// skipped ticks would have. Beyond IdleUntil's frontend/inet waits, Park
// also probes issue stalls: a core blocked on the scoreboard, a DAE frame,
// or inet backpressure is frozen — nothing in its own tick can unblock it —
// so it sleeps until the blocker's known ready cycle, or until a mesh
// delivery or same-shard progress wakes the shard (until = MaxInt64).
func (c *Core) Park(now int64) (bool, int64) {
	quiet, until, kind := c.IdleUntil(now + 1)
	if !quiet {
		// The tick at now may have stashed a parkable issue stall (see
		// noteStall): a pure stall whose blocker is frozen core state,
		// cleared only at a known scoreboard cycle, by a mesh delivery
		// (which wakes the shard), or by a same-shard neighbor's queue
		// drain. The neighbor ticks after this core within the shard, so
		// backpressure stashes re-verify their queue live; everything else
		// in the stash is untouchable between the tick and this probe.
		if c.stallAt != now {
			return false, 0
		}
		switch c.stallCheck {
		case checkSend:
			if c.outQs[0].CanSend() {
				return false, 0
			}
		case checkForward:
			if c.canForwardAll() {
				return false, 0
			}
		}
		until, kind = c.stallWake, c.stallKind
		if until <= now+1 {
			return false, 0
		}
	}
	c.parkedKind = kind
	return true, until
}

// CatchUp implements sim.Sleeper: replay n skipped parked cycles.
func (c *Core) CatchUp(n int64) { c.SkipIdle(n, c.parkedKind) }
