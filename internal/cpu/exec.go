package cpu

// Execution helpers shared by the pre-lowered closures in lower.go: register
// writeback, global memory and remote-scratchpad traffic, vloads, CSRs, and
// control-flow target application. The per-op semantics themselves are
// generated once per program by LowerProgram.

import (
	"fmt"
	"math"

	"rockcress/internal/isa"
	"rockcress/internal/msg"
	"rockcress/internal/stats"
)

func (c *Core) writeInt(r isa.Reg, v uint32, readyAt int64) {
	if r == isa.X0 {
		return
	}
	c.intRegs[r] = v
	c.intReady[r] = readyAt
}

func (c *Core) writeFp(f isa.FReg, v float32, readyAt int64) {
	c.fpRegs[f] = v
	c.fpReady[f] = readyAt
}

// globalLoad issues one word load to the LLC (lw/flw). rd/fd is the
// destination register number for the int/fp variant respectively.
func (c *Core) globalLoad(now int64, rs1 isa.Reg, imm uint32, isFp bool, rd, fd uint8) (bool, stats.StallKind) {
	slot := -1
	for i := range c.lq {
		if !c.lq[i].busy {
			slot = i
			break
		}
	}
	if slot < 0 {
		return false, stats.StallFrame // waiting on memory: LQ full
	}
	addr := c.intRegs[rs1] + imm
	m := msg.Message{
		Kind: msg.KindLoadReq, Src: c.ID, Dst: c.env.LLCNodeFor(addr),
		Addr: addr, Words: 1, LQSlot: slot,
	}
	if !c.env.TrySend(m) {
		return false, stats.StallOther
	}
	if isFp {
		c.lq[slot] = lqEntry{busy: true, isFp: true, reg: fd}
		c.fpReady[fd] = pendingLoad
		c.fpPending |= 1 << fd
	} else {
		c.lq[slot] = lqEntry{busy: true, reg: rd}
		if isa.Reg(rd) != isa.X0 {
			c.intReady[rd] = pendingLoad
			c.intPending |= 1 << rd
		}
	}
	c.st.LoadsIssued++
	return true, stats.StallNone
}

func (c *Core) globalStore(now int64, rs1 isa.Reg, imm, val uint32) (bool, stats.StallKind) {
	addr := c.intRegs[rs1] + imm
	if c.watchAddr != 0 && addr == c.watchAddr {
		fmt.Printf("[%d] core %d ISSUES store %#x = %d\n", now, c.ID, addr, int32(val))
	}
	m := msg.Message{
		Kind: msg.KindStoreReq, Src: c.ID, Dst: c.env.LLCNodeFor(addr),
		Addr: addr, Words: 1,
	}
	m.Vals[0] = val
	if !c.env.TrySend(m) {
		return false, stats.StallOther
	}
	c.st.StoresIssued++
	return true, stats.StallNone
}

func (c *Core) remoteStore(now int64, rs3, rs1 isa.Reg, imm, val uint32) (bool, stats.StallKind) {
	dst := int(c.intRegs[rs3])
	m := msg.Message{
		Kind: msg.KindRemoteStore, Src: c.ID, Dst: dst,
		SpadOff: c.intRegs[rs1] + imm, Words: 1,
	}
	m.Vals[0] = val
	if !c.env.TrySend(m) {
		return false, stats.StallOther
	}
	c.st.StoresIssued++
	return true, stats.StallNone
}

// execVload issues one wide vector load from the scalar core (or a
// self-prefetch from an independent core in the NV_PF configurations).
func (c *Core) execVload(now int64, in *isa.Instr) (bool, stats.StallKind) {
	addr := c.intRegs[in.Rs1]
	spadOff := c.intRegs[in.Rs2]
	vl := in.Vl
	lineBytes := uint32(c.cfg.CacheLineBytes)
	nlanes := 1
	group := -1
	if vl.Dist != isa.VloadSelf {
		if c.group == nil || c.group.Scalar != c.ID {
			c.fail("%s vload outside a scalar role", vl.Dist)
			return true, stats.StallNone
		}
		group = c.group.ID
		if vl.Dist == isa.VloadGroup {
			nlanes = c.group.VLen() - vl.BaseLane
		}
	}
	total := vl.Width * nlanes
	line := addr &^ (lineBytes - 1)
	dstLine := line
	if vl.Part == isa.VloadPrefix {
		dstLine = line + lineBytes
	}
	m := msg.Message{
		Kind: msg.KindVloadReq, Src: c.ID, Dst: c.env.LLCNodeFor(dstLine),
		Addr: addr, Words: total, SpadOff: spadOff,
		Vload: vl, Group: group, ReqCore: c.ID,
	}
	if !c.env.TrySend(m) {
		return false, stats.StallOther
	}
	c.st.VloadsIssued++
	return true, stats.StallNone
}

func (c *Core) execCsrw(now int64, in *isa.Instr) (bool, stats.StallKind) {
	v := c.intRegs[in.Rs1]
	switch in.Csr {
	case isa.CsrVconfig:
		if v == 0 {
			c.fail("vconfig 0: use devec to disband")
			return true, stats.StallNone
		}
		c.state = stFormGroup
		c.ticket = c.env.GroupArrive(c.ID)
		return true, stats.StallNone
	case isa.CsrFrameCfg:
		c.spad.Configure(int(v&0xffff), int((v>>16)&0xff))
		return true, stats.StallNone
	case isa.CsrCkpt:
		c.env.ArmCheckpoint()
		return true, stats.StallNone
	default:
		c.fail("write to read-only CSR %s", in.Csr)
		return true, stats.StallNone
	}
}

func (c *Core) readCSR(csr isa.CSR) uint32 {
	switch csr {
	case isa.CsrCoreID:
		return uint32(c.ID)
	case isa.CsrNumCores:
		return uint32(c.cfg.Cores)
	case isa.CsrLaneID:
		if c.laneIdx < 0 {
			return 0xffffffff
		}
		return uint32(c.laneIdx)
	case isa.CsrGroupID:
		if c.group == nil {
			return 0xffffffff
		}
		return uint32(c.group.ID)
	case isa.CsrNumGroups:
		return uint32(c.numGroups())
	}
	c.fail("read of CSR %s", csr)
	return 0
}

// jumpTo applies a resolved control-flow target. In a microthread (expander)
// the vpc moves; otherwise the pc moves. Taken control flow pays the branch
// penalty; the expander's fetch pause is charged by its caller.
func (c *Core) jumpTo(now int64, micro bool, target int, taken bool) {
	if micro {
		c.setVPC(target)
	} else {
		c.setPC(target)
	}
	if taken {
		c.fetchReadyAt = now + int64(c.cfg.BranchPenalty)
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Float helpers preserving the old interpreter's exact semantics (promotion
// through float64 for min/max/abs/sqrt, IEEE bit moves for fmv.x.w/fmv.w.x).
func sqrt32(x float32) float32     { return float32(math.Sqrt(float64(x))) }
func min64f(a, b float32) float32  { return float32(math.Min(float64(a), float64(b))) }
func max64f(a, b float32) float32  { return float32(math.Max(float64(a), float64(b))) }
func abs32(x float32) float32      { return float32(math.Abs(float64(x))) }
func f32bits(x float32) uint32     { return math.Float32bits(x) }
func f32frombits(x uint32) float32 { return math.Float32frombits(x) }
