package cpu

import (
	"fmt"
	"math"

	"rockcress/internal/inet"
	"rockcress/internal/isa"
	"rockcress/internal/msg"
	"rockcress/internal/stats"
)

// checkSources verifies every source register (and the destination, for
// write-after-write) is ready at cycle now. Stalls caused by outstanding
// memory responses are classed as frame stalls (the paper's CPI stacks fold
// load waiting into "frame stall").
func (c *Core) checkSources(now int64, in *isa.Instr) (bool, stats.StallKind) {
	stall := func(pending bool) (bool, stats.StallKind) {
		if pending {
			return false, stats.StallFrame
		}
		return false, stats.StallOther
	}
	var irs [3]isa.Reg
	for i, n := 0, in.IntSrcs(&irs); i < n; i++ {
		r := irs[i]
		if c.intReady[r] > now {
			return stall(c.intPending&(1<<r) != 0)
		}
	}
	var frs [3]isa.FReg
	for i, n := 0, in.FpSrcs(&frs); i < n; i++ {
		f := frs[i]
		if c.fpReady[f] > now {
			return stall(c.fpPending&(1<<f) != 0)
		}
	}
	switch in.Op {
	case isa.OpVfadd, isa.OpVfsub, isa.OpVfmul:
		if c.vecReady[in.Vs1] > now || c.vecReady[in.Vs2] > now {
			return false, stats.StallOther
		}
	case isa.OpVfma:
		if c.vecReady[in.Vs1] > now || c.vecReady[in.Vs2] > now || c.vecReady[in.Vd] > now {
			return false, stats.StallOther
		}
	case isa.OpVfmaF:
		if c.vecReady[in.Vs1] > now || c.vecReady[in.Vd] > now {
			return false, stats.StallOther
		}
	case isa.OpVfmulF, isa.OpVswSp, isa.OpVfredsum:
		if c.vecReady[in.Vs1] > now {
			return false, stats.StallOther
		}
	}
	// Write-after-write: wait for in-flight writers of the destination.
	if in.WritesInt() && c.intReady[in.Rd] > now {
		return stall(c.intPending&(1<<in.Rd) != 0)
	}
	if in.WritesFp() && c.fpReady[in.Fd] > now {
		return stall(c.fpPending&(1<<in.Fd) != 0)
	}
	switch in.Op {
	case isa.OpVlwSp, isa.OpVfadd, isa.OpVfsub, isa.OpVfmul, isa.OpVfmulF, isa.OpVbcastF:
		if c.vecReady[in.Vd] > now {
			return false, stats.StallOther
		}
	}
	return true, stats.StallNone
}

func (c *Core) writeInt(r isa.Reg, v uint32, readyAt int64) {
	if r == isa.X0 {
		return
	}
	c.intRegs[r] = v
	c.intReady[r] = readyAt
}

func (c *Core) writeFp(f isa.FReg, v float32, readyAt int64) {
	c.fpRegs[f] = v
	c.fpReady[f] = readyAt
}

// issue attempts to execute one instruction at cycle now, honouring
// predication, scoreboard, and structural hazards. It returns whether the
// instruction issued and, if not, the stall class.
func (c *Core) issue(now int64, in *isa.Instr) (bool, stats.StallKind) {
	if isa.IsControlFlow(in.Op) {
		return c.execControl(now, in, c.mode == ModeVector)
	}
	// Predicated-off instructions execute as nops but still flow through
	// the pipeline (and the inet), costing a cycle (§2.4).
	if !c.predOn && isa.IsPredicatable(in.Op) {
		c.st.PredNops++
		c.st.CountClass(uint8(isa.ClassNop))
		if c.mode != ModeVector {
			c.setPC(c.pc + 1)
		}
		return true, stats.StallNone
	}
	if ok, stall := c.checkSources(now, in); !ok {
		return false, stall
	}
	if ok, stall := c.exec(now, in); !ok {
		return false, stall
	}
	c.st.CountClass(uint8(isa.Classify(in.Op)))
	if c.mode != ModeVector && c.state == stRun && !c.halted {
		// Sequential PC advance for frontend-driven cores. Instructions
		// that enter a waiting state (vconfig, barrier) or vector mode
		// manage the PC themselves.
		c.setPC(c.pc + 1)
	}
	return true, stats.StallNone
}

// exec performs the instruction's semantics. It may still refuse (resource
// hazards discovered at execution, e.g. a full load queue or NoC inject).
func (c *Core) exec(now int64, in *isa.Instr) (bool, stats.StallKind) {
	r := &c.intRegs
	f := &c.fpRegs
	aluDone := now + int64(c.cfg.ALULat)
	switch in.Op {
	case isa.OpNop:
	case isa.OpAdd:
		c.writeInt(in.Rd, r[in.Rs1]+r[in.Rs2], aluDone)
	case isa.OpSub:
		c.writeInt(in.Rd, r[in.Rs1]-r[in.Rs2], aluDone)
	case isa.OpMul:
		c.writeInt(in.Rd, uint32(int32(r[in.Rs1])*int32(r[in.Rs2])), now+int64(c.cfg.MulLat))
	case isa.OpDiv, isa.OpRem:
		if now < c.divBusyUntil {
			return false, stats.StallOther
		}
		c.divBusyUntil = now + int64(c.cfg.DivLat)
		a, b := int32(r[in.Rs1]), int32(r[in.Rs2])
		var q, rem int32
		switch {
		case b == 0:
			q, rem = -1, a
		case a == math.MinInt32 && b == -1:
			q, rem = a, 0
		default:
			q, rem = a/b, a%b
		}
		v := q
		if in.Op == isa.OpRem {
			v = rem
		}
		c.writeInt(in.Rd, uint32(v), now+int64(c.cfg.DivLat))
	case isa.OpAnd:
		c.writeInt(in.Rd, r[in.Rs1]&r[in.Rs2], aluDone)
	case isa.OpOr:
		c.writeInt(in.Rd, r[in.Rs1]|r[in.Rs2], aluDone)
	case isa.OpXor:
		c.writeInt(in.Rd, r[in.Rs1]^r[in.Rs2], aluDone)
	case isa.OpSll:
		c.writeInt(in.Rd, r[in.Rs1]<<(r[in.Rs2]&31), aluDone)
	case isa.OpSrl:
		c.writeInt(in.Rd, r[in.Rs1]>>(r[in.Rs2]&31), aluDone)
	case isa.OpSra:
		c.writeInt(in.Rd, uint32(int32(r[in.Rs1])>>(r[in.Rs2]&31)), aluDone)
	case isa.OpSlt:
		c.writeInt(in.Rd, b2u(int32(r[in.Rs1]) < int32(r[in.Rs2])), aluDone)
	case isa.OpSltu:
		c.writeInt(in.Rd, b2u(r[in.Rs1] < r[in.Rs2]), aluDone)
	case isa.OpAddi:
		c.writeInt(in.Rd, r[in.Rs1]+uint32(in.Imm), aluDone)
	case isa.OpAndi:
		c.writeInt(in.Rd, r[in.Rs1]&uint32(in.Imm), aluDone)
	case isa.OpOri:
		c.writeInt(in.Rd, r[in.Rs1]|uint32(in.Imm), aluDone)
	case isa.OpXori:
		c.writeInt(in.Rd, r[in.Rs1]^uint32(in.Imm), aluDone)
	case isa.OpSlli:
		c.writeInt(in.Rd, r[in.Rs1]<<(uint32(in.Imm)&31), aluDone)
	case isa.OpSrli:
		c.writeInt(in.Rd, r[in.Rs1]>>(uint32(in.Imm)&31), aluDone)
	case isa.OpSrai:
		c.writeInt(in.Rd, uint32(int32(r[in.Rs1])>>(uint32(in.Imm)&31)), aluDone)
	case isa.OpSlti:
		c.writeInt(in.Rd, b2u(int32(r[in.Rs1]) < in.Imm), aluDone)
	case isa.OpLi:
		c.writeInt(in.Rd, uint32(in.Imm), aluDone)

	case isa.OpFadd:
		c.writeFp(in.Fd, f[in.Fs1]+f[in.Fs2], now+int64(c.cfg.FpALULat))
	case isa.OpFsub:
		c.writeFp(in.Fd, f[in.Fs1]-f[in.Fs2], now+int64(c.cfg.FpALULat))
	case isa.OpFmul:
		c.writeFp(in.Fd, f[in.Fs1]*f[in.Fs2], now+int64(c.cfg.FpMulLat))
	case isa.OpFmadd:
		c.writeFp(in.Fd, f[in.Fs1]*f[in.Fs2]+f[in.Fs3], now+int64(c.cfg.FpMulLat))
	case isa.OpFdiv:
		if now < c.divBusyUntil {
			return false, stats.StallOther
		}
		c.divBusyUntil = now + int64(c.cfg.FpDivLat)
		c.writeFp(in.Fd, f[in.Fs1]/f[in.Fs2], now+int64(c.cfg.FpDivLat))
	case isa.OpFsqrt:
		if now < c.divBusyUntil {
			return false, stats.StallOther
		}
		c.divBusyUntil = now + int64(c.cfg.FpDivLat)
		c.writeFp(in.Fd, float32(math.Sqrt(float64(f[in.Fs1]))), now+int64(c.cfg.FpDivLat))
	case isa.OpFmin:
		c.writeFp(in.Fd, float32(math.Min(float64(f[in.Fs1]), float64(f[in.Fs2]))), now+int64(c.cfg.FpALULat))
	case isa.OpFmax:
		c.writeFp(in.Fd, float32(math.Max(float64(f[in.Fs1]), float64(f[in.Fs2]))), now+int64(c.cfg.FpALULat))
	case isa.OpFabs:
		c.writeFp(in.Fd, float32(math.Abs(float64(f[in.Fs1]))), now+int64(c.cfg.FpALULat))
	case isa.OpFneg:
		c.writeFp(in.Fd, -f[in.Fs1], now+int64(c.cfg.FpALULat))
	case isa.OpFmv:
		c.writeFp(in.Fd, f[in.Fs1], now+int64(c.cfg.FpALULat))
	case isa.OpFeq:
		c.writeInt(in.Rd, b2u(f[in.Fs1] == f[in.Fs2]), now+int64(c.cfg.FpALULat))
	case isa.OpFlt:
		c.writeInt(in.Rd, b2u(f[in.Fs1] < f[in.Fs2]), now+int64(c.cfg.FpALULat))
	case isa.OpFle:
		c.writeInt(in.Rd, b2u(f[in.Fs1] <= f[in.Fs2]), now+int64(c.cfg.FpALULat))
	case isa.OpFcvtWS:
		c.writeInt(in.Rd, uint32(int32(f[in.Fs1])), now+int64(c.cfg.FpALULat))
	case isa.OpFcvtSW:
		c.writeFp(in.Fd, float32(int32(r[in.Rs1])), now+int64(c.cfg.FpALULat))
	case isa.OpFmvXW:
		c.writeInt(in.Rd, math.Float32bits(f[in.Fs1]), now+int64(c.cfg.FpALULat))
	case isa.OpFmvWX:
		c.writeFp(in.Fd, math.Float32frombits(r[in.Rs1]), now+int64(c.cfg.FpALULat))

	case isa.OpLw, isa.OpFlw:
		return c.execGlobalLoad(now, in)
	case isa.OpSw:
		return c.execGlobalStore(now, in, r[in.Rs2])
	case isa.OpFsw:
		return c.execGlobalStore(now, in, math.Float32bits(f[in.Fs2]))

	case isa.OpLwSp:
		off := r[in.Rs1] + uint32(in.Imm)
		c.writeInt(in.Rd, c.spad.ReadWord(off), now+int64(c.cfg.SpadHitLat))
	case isa.OpFlwSp:
		off := r[in.Rs1] + uint32(in.Imm)
		c.writeFp(in.Fd, math.Float32frombits(c.spad.ReadWord(off)), now+int64(c.cfg.SpadHitLat))
	case isa.OpSwSp:
		c.spad.WriteWord(r[in.Rs1]+uint32(in.Imm), r[in.Rs2])
	case isa.OpFswSp:
		c.spad.WriteWord(r[in.Rs1]+uint32(in.Imm), math.Float32bits(f[in.Fs2]))
	case isa.OpSwRemote:
		return c.execRemoteStore(now, in, r[in.Rs2])
	case isa.OpFswRemote:
		return c.execRemoteStore(now, in, math.Float32bits(f[in.Fs2]))

	case isa.OpCsrw:
		return c.execCsrw(now, in)
	case isa.OpCsrr:
		c.writeInt(in.Rd, c.readCSR(in.Csr), aluDone)

	case isa.OpVissue:
		if len(c.outQs) != 1 {
			c.fail("vissue outside a scalar role")
			return true, stats.StallNone
		}
		if !c.outQs[0].CanSend() {
			return false, stats.StallBackpressure
		}
		c.outQs[0].Send(now, inet.Item{Kind: inet.ItemMTStart, PC: in.Imm})
		c.st.Microthreads++
	case isa.OpDevec:
		if len(c.outQs) != 1 {
			c.fail("devec outside a scalar role")
			return true, stats.StallNone
		}
		if !c.outQs[0].CanSend() {
			return false, stats.StallBackpressure
		}
		c.outQs[0].Send(now, inet.Item{Kind: inet.ItemDevec, PC: in.Imm})
		c.mode = ModeIndependent
	case isa.OpVend:
		// Handled by the expander's fetch loop; lanes never receive it.
		c.fail("vend executed outside expander fetch")
	case isa.OpFrameStart:
		if !c.spad.FrameReady() {
			return false, stats.StallFrame
		}
		c.writeInt(in.Rd, c.spad.FrameBase(), now+1)
	case isa.OpRemem:
		c.spad.FreeFrame()
	case isa.OpVload:
		return c.execVload(now, in)
	case isa.OpPredEq:
		c.predOn = r[in.Rs1] == r[in.Rs2]
	case isa.OpPredNeq:
		c.predOn = r[in.Rs1] != r[in.Rs2]

	case isa.OpVlwSp:
		off := r[in.Rs1] + uint32(in.Imm)
		for i := 0; i < c.cfg.SIMDWidth; i++ {
			c.vecRegs[in.Vd][i] = math.Float32frombits(c.spad.ReadWord(off + uint32(4*i)))
		}
		c.vecReady[in.Vd] = now + int64(c.cfg.SpadHitLat)
	case isa.OpVswSp:
		off := r[in.Rs1] + uint32(in.Imm)
		for i := 0; i < c.cfg.SIMDWidth; i++ {
			c.spad.WriteWord(off+uint32(4*i), math.Float32bits(c.vecRegs[in.Vs1][i]))
		}
	case isa.OpVfadd, isa.OpVfsub, isa.OpVfmul, isa.OpVfma:
		a, b := c.vecRegs[in.Vs1], c.vecRegs[in.Vs2]
		d := c.vecRegs[in.Vd]
		for i := range d {
			switch in.Op {
			case isa.OpVfadd:
				d[i] = a[i] + b[i]
			case isa.OpVfsub:
				d[i] = a[i] - b[i]
			case isa.OpVfmul:
				d[i] = a[i] * b[i]
			case isa.OpVfma:
				d[i] += a[i] * b[i]
			}
		}
		c.vecReady[in.Vd] = now + int64(c.cfg.SIMDLat)
	case isa.OpVfmaF:
		a, d, s := c.vecRegs[in.Vs1], c.vecRegs[in.Vd], f[in.Fs3]
		for i := range d {
			d[i] += a[i] * s
		}
		c.vecReady[in.Vd] = now + int64(c.cfg.SIMDLat)
	case isa.OpVfmulF:
		a, d, s := c.vecRegs[in.Vs1], c.vecRegs[in.Vd], f[in.Fs3]
		for i := range d {
			d[i] = a[i] * s
		}
		c.vecReady[in.Vd] = now + int64(c.cfg.SIMDLat)
	case isa.OpVbcastF:
		d, s := c.vecRegs[in.Vd], f[in.Fs3]
		for i := range d {
			d[i] = s
		}
		c.vecReady[in.Vd] = now + int64(c.cfg.SIMDLat)
	case isa.OpVfredsum:
		var sum float32
		for _, v := range c.vecRegs[in.Vs1] {
			sum += v
		}
		c.writeFp(in.Fd, sum, now+int64(c.cfg.SIMDLat)+2)

	case isa.OpBarrier:
		c.state = stBarrier
		c.ticket = c.env.BarrierArrive(c.ID)
	case isa.OpHalt:
		c.halted = true
		c.env.NotifyHalt(c.ID)
	default:
		c.fail("unimplemented op %s", in.Op)
	}
	return true, stats.StallNone
}

func (c *Core) execGlobalLoad(now int64, in *isa.Instr) (bool, stats.StallKind) {
	slot := -1
	for i := range c.lq {
		if !c.lq[i].busy {
			slot = i
			break
		}
	}
	if slot < 0 {
		return false, stats.StallFrame // waiting on memory: LQ full
	}
	addr := c.intRegs[in.Rs1] + uint32(in.Imm)
	m := msg.Message{
		Kind: msg.KindLoadReq, Src: c.ID, Dst: c.env.LLCNodeFor(addr),
		Addr: addr, Words: 1, LQSlot: slot,
	}
	if !c.env.TrySend(m) {
		return false, stats.StallOther
	}
	if in.Op == isa.OpFlw {
		c.lq[slot] = lqEntry{busy: true, isFp: true, reg: uint8(in.Fd)}
		c.fpReady[in.Fd] = pendingLoad
		c.fpPending |= 1 << in.Fd
	} else {
		c.lq[slot] = lqEntry{busy: true, reg: uint8(in.Rd)}
		if in.Rd != isa.X0 {
			c.intReady[in.Rd] = pendingLoad
			c.intPending |= 1 << in.Rd
		}
	}
	c.st.LoadsIssued++
	return true, stats.StallNone
}

func (c *Core) execGlobalStore(now int64, in *isa.Instr, val uint32) (bool, stats.StallKind) {
	addr := c.intRegs[in.Rs1] + uint32(in.Imm)
	if c.watchAddr != 0 && addr == c.watchAddr {
		fmt.Printf("[%d] core %d ISSUES store %#x = %d\n", now, c.ID, addr, int32(val))
	}
	m := msg.Message{
		Kind: msg.KindStoreReq, Src: c.ID, Dst: c.env.LLCNodeFor(addr),
		Addr: addr, Vals: []uint32{val}, Words: 1,
	}
	if !c.env.TrySend(m) {
		return false, stats.StallOther
	}
	c.st.StoresIssued++
	return true, stats.StallNone
}

func (c *Core) execRemoteStore(now int64, in *isa.Instr, val uint32) (bool, stats.StallKind) {
	dst := int(c.intRegs[in.Rs3])
	m := msg.Message{
		Kind: msg.KindRemoteStore, Src: c.ID, Dst: dst,
		SpadOff: c.intRegs[in.Rs1] + uint32(in.Imm), Vals: []uint32{val}, Words: 1,
	}
	if !c.env.TrySend(m) {
		return false, stats.StallOther
	}
	c.st.StoresIssued++
	return true, stats.StallNone
}

// execVload issues one wide vector load from the scalar core (or a
// self-prefetch from an independent core in the NV_PF configurations).
func (c *Core) execVload(now int64, in *isa.Instr) (bool, stats.StallKind) {
	addr := c.intRegs[in.Rs1]
	spadOff := c.intRegs[in.Rs2]
	vl := in.Vl
	lineBytes := uint32(c.cfg.CacheLineBytes)
	nlanes := 1
	group := -1
	if vl.Dist != isa.VloadSelf {
		if c.group == nil || c.group.Scalar != c.ID {
			c.fail("%s vload outside a scalar role", vl.Dist)
			return true, stats.StallNone
		}
		group = c.group.ID
		if vl.Dist == isa.VloadGroup {
			nlanes = c.group.VLen() - vl.BaseLane
		}
	}
	total := vl.Width * nlanes
	line := addr &^ (lineBytes - 1)
	dstLine := line
	if vl.Part == isa.VloadPrefix {
		dstLine = line + lineBytes
	}
	m := msg.Message{
		Kind: msg.KindVloadReq, Src: c.ID, Dst: c.env.LLCNodeFor(dstLine),
		Addr: addr, Words: total, SpadOff: spadOff,
		Vload: vl, Group: group, ReqCore: c.ID,
	}
	if !c.env.TrySend(m) {
		return false, stats.StallOther
	}
	c.st.VloadsIssued++
	return true, stats.StallNone
}

func (c *Core) execCsrw(now int64, in *isa.Instr) (bool, stats.StallKind) {
	v := c.intRegs[in.Rs1]
	switch in.Csr {
	case isa.CsrVconfig:
		if v == 0 {
			c.fail("vconfig 0: use devec to disband")
			return true, stats.StallNone
		}
		c.state = stFormGroup
		c.ticket = c.env.GroupArrive(c.ID)
		return true, stats.StallNone
	case isa.CsrFrameCfg:
		c.spad.Configure(int(v&0xffff), int((v>>16)&0xff))
		return true, stats.StallNone
	case isa.CsrCkpt:
		c.env.ArmCheckpoint()
		return true, stats.StallNone
	default:
		c.fail("write to read-only CSR %s", in.Csr)
		return true, stats.StallNone
	}
}

func (c *Core) readCSR(csr isa.CSR) uint32 {
	switch csr {
	case isa.CsrCoreID:
		return uint32(c.ID)
	case isa.CsrNumCores:
		return uint32(c.cfg.Cores)
	case isa.CsrLaneID:
		if c.laneIdx < 0 {
			return 0xffffffff
		}
		return uint32(c.laneIdx)
	case isa.CsrGroupID:
		if c.group == nil {
			return 0xffffffff
		}
		return uint32(c.group.ID)
	case isa.CsrNumGroups:
		return uint32(c.numGroups())
	}
	c.fail("read of CSR %s", csr)
	return 0
}

// execControl resolves branches and jumps. In a microthread (expander) the
// vpc moves; otherwise the pc moves. Taken control flow pays the branch
// penalty; the expander's fetch pause is charged by its caller.
func (c *Core) execControl(now int64, in *isa.Instr, micro bool) (bool, stats.StallKind) {
	if ok, stall := c.checkSources(now, in); !ok {
		return false, stall
	}
	r := &c.intRegs
	cur := c.pc
	if micro {
		cur = c.vpc
	}
	next := cur + 1
	taken := false
	switch in.Op {
	case isa.OpBeq:
		taken = r[in.Rs1] == r[in.Rs2]
	case isa.OpBne:
		taken = r[in.Rs1] != r[in.Rs2]
	case isa.OpBlt:
		taken = int32(r[in.Rs1]) < int32(r[in.Rs2])
	case isa.OpBge:
		taken = int32(r[in.Rs1]) >= int32(r[in.Rs2])
	case isa.OpBltu:
		taken = r[in.Rs1] < r[in.Rs2]
	case isa.OpBgeu:
		taken = r[in.Rs1] >= r[in.Rs2]
	case isa.OpJal:
		c.writeInt(in.Rd, uint32(next), now+1)
		taken = true
	case isa.OpJalr:
		c.writeInt(in.Rd, uint32(next), now+1)
		tgt := int(r[in.Rs1]) + int(in.Imm)
		c.st.CountClass(uint8(isa.Classify(in.Op)))
		c.jumpTo(now, micro, tgt, true)
		return true, stats.StallNone
	}
	c.st.CountClass(uint8(isa.Classify(in.Op)))
	if taken {
		c.jumpTo(now, micro, int(in.Imm), true)
	} else {
		c.jumpTo(now, micro, next, false)
	}
	return true, stats.StallNone
}

func (c *Core) jumpTo(now int64, micro bool, target int, taken bool) {
	if micro {
		c.setVPC(target)
	} else {
		c.setPC(target)
	}
	if taken {
		c.fetchReadyAt = now + int64(c.cfg.BranchPenalty)
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
