package cpu

import "testing"

func TestICacheHitAfterFill(t *testing.T) {
	c, _ := NewICache(4096, 2, 64)
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) || !c.Access(60) {
		t.Fatal("same line missed after fill")
	}
	if c.Access(64) {
		t.Fatal("next line hit cold")
	}
}

func TestICacheAssociativity(t *testing.T) {
	c, _ := NewICache(4096, 2, 64)
	// 4kB 2-way 64B lines = 32 sets; addresses 0, 2048, 4096 share set 0.
	c.Access(0)
	c.Access(2048)
	if !c.Access(0) || !c.Access(2048) {
		t.Fatal("two ways should both hold their lines")
	}
	c.Access(4096) // evicts the LRU way (line 0)
	if c.Access(0) {
		t.Fatal("line 0 should have been evicted")
	}
	// The probe above refilled line 0, evicting the then-LRU 2048.
	if !c.Access(4096) || !c.Access(0) {
		t.Fatal("recent lines evicted instead of LRU")
	}
}

func TestICacheLoopResidency(t *testing.T) {
	c, _ := NewICache(4096, 2, 64)
	// A 512-instruction loop (2 kB) fits: after one warm pass every
	// access hits.
	for pc := uint32(0); pc < 512; pc++ {
		c.Access(pc * 4)
	}
	for pc := uint32(0); pc < 512; pc++ {
		if !c.Access(pc * 4) {
			t.Fatalf("pc %d missed in steady state", pc)
		}
	}
}
