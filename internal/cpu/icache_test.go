package cpu

import (
	"testing"

	"rockcress/internal/config"
	"rockcress/internal/isa"
	"rockcress/internal/mem"
	"rockcress/internal/msg"
	"rockcress/internal/stats"
)

func TestICacheHitAfterFill(t *testing.T) {
	c, _ := NewICache(4096, 2, 64)
	if c.Access(0) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0) || !c.Access(60) {
		t.Fatal("same line missed after fill")
	}
	if c.Access(64) {
		t.Fatal("next line hit cold")
	}
}

func TestICacheAssociativity(t *testing.T) {
	c, _ := NewICache(4096, 2, 64)
	// 4kB 2-way 64B lines = 32 sets; addresses 0, 2048, 4096 share set 0.
	c.Access(0)
	c.Access(2048)
	if !c.Access(0) || !c.Access(2048) {
		t.Fatal("two ways should both hold their lines")
	}
	c.Access(4096) // evicts the LRU way (line 0)
	if c.Access(0) {
		t.Fatal("line 0 should have been evicted")
	}
	// The probe above refilled line 0, evicting the then-LRU 2048.
	if !c.Access(4096) || !c.Access(0) {
		t.Fatal("recent lines evicted instead of LRU")
	}
}

func TestICacheLoopResidency(t *testing.T) {
	c, _ := NewICache(4096, 2, 64)
	// A 512-instruction loop (2 kB) fits: after one warm pass every
	// access hits.
	for pc := uint32(0); pc < 512; pc++ {
		c.Access(pc * 4)
	}
	for pc := uint32(0); pc < 512; pc++ {
		if !c.Access(pc * 4) {
			t.Fatalf("pc %d missed in steady state", pc)
		}
	}
}

// --- decode-cache coherence (pre-lowered dispatch) ---
//
// The decode cache (Core.decoded) models which pre-lowered entries a core
// holds "decoded": an entry becomes resident when the frontend fetches its
// pc and must be dropped exactly when the icache evicts the backing line.
// These tests pin that coherence contract through eviction, mode switches,
// and the fault-recovery ForceDisband path, via the DecodeCached hook.

type stubEnv struct{ err error }

func (stubEnv) TrySend(msg.Message) bool    { return true }
func (stubEnv) LLCNodeFor(uint32) int       { return 0 }
func (stubEnv) GroupArrive(int) int64       { return 0 }
func (stubEnv) GroupFormed(int, int64) bool { return true }
func (stubEnv) BarrierArrive(int) int64     { return 0 }
func (stubEnv) BarrierDone(int64) bool      { return true }
func (stubEnv) NotifyHalt(int)              {}
func (stubEnv) NumGroups() int              { return 0 }
func (stubEnv) ArmCheckpoint()              {}
func (e *stubEnv) Error(err error)          { e.err = err }

// newDecodeCore builds an ungrouped (independent-mode) core over a straight-
// line program of n-1 nops and a halt, sized to span several icache lines.
func newDecodeCore(t *testing.T, n int) (*Core, *stubEnv) {
	t.Helper()
	code := make([]isa.Instr, n)
	for i := range code {
		code[i] = isa.Instr{Op: isa.OpNop}
	}
	code[n-1] = isa.Instr{Op: isa.OpHalt}
	prog := &isa.Program{Name: "decode-test", Code: code, Labels: map[string]int{}}
	cfg := config.ManycoreDefault()
	env := &stubEnv{}
	st := &stats.Core{}
	spad, err := mem.NewScratchpad(0, cfg.SpadBytes, cfg.FrameCounters, st)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(0, cfg, LowerProgram(prog, cfg), env, st, spad, nil, -1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c, env
}

// runToHalt ticks the core until it halts (or the cycle bound trips).
func runToHalt(t *testing.T, c *Core, env *stubEnv) {
	t.Helper()
	for now := int64(0); !c.Halted(); now++ {
		if now > 100000 {
			t.Fatal("core did not halt within the cycle bound")
		}
		c.Tick(now)
		if env.err != nil {
			t.Fatal(env.err)
		}
	}
}

func TestDecodeCacheFillsOnFetch(t *testing.T) {
	// 40 nops span three 16-instruction lines; all fit in the 4 kB icache,
	// so after one pass every fetched pc is held decoded.
	c, env := newDecodeCore(t, 40)
	if c.DecodeCached(0) {
		t.Fatal("pc 0 decoded before any fetch")
	}
	runToHalt(t, c, env)
	for pc := 0; pc < 40; pc++ {
		if !c.DecodeCached(pc) {
			t.Fatalf("pc %d not decoded after execution with resident icache", pc)
		}
	}
	if c.DecodeCached(-1) || c.DecodeCached(40) {
		t.Fatal("out-of-range pc reported decoded")
	}
}

func TestDecodeCacheInvalidatedOnEviction(t *testing.T) {
	c, env := newDecodeCore(t, 40)
	runToHalt(t, c, env)
	// Default geometry: 4 kB 2-way 64 B lines = 32 sets, so byte addresses
	// 2048 and 4096 alias line 0's set. Filling both ways with aliases must
	// displace line 0 and drop exactly its 16 pcs (0..15); line 1 (set 1)
	// stays resident and decoded.
	c.icache.Access(2048)
	c.icache.Access(4096)
	for pc := 0; pc < 16; pc++ {
		if c.DecodeCached(pc) {
			t.Fatalf("pc %d still decoded after its icache line was evicted", pc)
		}
	}
	for pc := 16; pc < 40; pc++ {
		if !c.DecodeCached(pc) {
			t.Fatalf("pc %d dropped but its line was never evicted", pc)
		}
	}
}

func TestDecodeCacheSurvivesModeSwitch(t *testing.T) {
	// Decode state is tied to icache residency, not to the core's role:
	// switching modes must neither drop entries nor detach the eviction
	// hook.
	c, env := newDecodeCore(t, 40)
	runToHalt(t, c, env)
	for _, m := range []Mode{ModeScalar, ModeVector, ModeIndependent} {
		c.mode = m
		if !c.DecodeCached(0) || !c.DecodeCached(39) {
			t.Fatalf("mode switch to %s dropped decoded entries", m)
		}
	}
	c.mode = ModeVector
	c.icache.Access(2048)
	c.icache.Access(4096)
	if c.DecodeCached(0) {
		t.Fatal("eviction hook inert after mode switches")
	}
	if !c.DecodeCached(16) {
		t.Fatal("eviction in vector mode dropped an unrelated line")
	}
}

func TestDecodeCacheSurvivesForceDisband(t *testing.T) {
	// ForceDisband abandons the core's group role and redirects it to the
	// recovery pc. The decode cache must survive (the icache kept its
	// lines) and keep tracking evictions afterwards.
	c, env := newDecodeCore(t, 40)
	runToHalt(t, c, env)
	c.halted = false // re-arm the core so disband redirects it
	c.ForceDisband(500, 16)
	if c.Mode() != ModeIndependent {
		t.Fatalf("mode after disband = %s, want independent", c.Mode())
	}
	if c.PC() != 16 {
		t.Fatalf("pc after disband = %d, want 16", c.PC())
	}
	for pc := 0; pc < 40; pc++ {
		if !c.DecodeCached(pc) {
			t.Fatalf("disband dropped decoded pc %d with its line still resident", pc)
		}
	}
	// Resume at the recovery pc: the warm decode cache and icache mean the
	// core re-issues without re-fetch misses, and the eviction hook is
	// still wired.
	for now := int64(501); !c.Halted(); now++ {
		if now > 101000 {
			t.Fatal("core did not halt after disband")
		}
		c.Tick(now)
		if env.err != nil {
			t.Fatal(env.err)
		}
	}
	c.icache.Access(2048)
	c.icache.Access(4096)
	if c.DecodeCached(0) {
		t.Fatal("eviction hook inert after ForceDisband")
	}
}
