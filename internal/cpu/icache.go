package cpu

import "fmt"

// ICache models a tile's private instruction cache as a set-associative tag
// array. Misses pay a fixed refill penalty (the paper's gem5 model fetches
// over the NoC; we approximate the refill with a constant latency and keep
// the access/miss counts, which drive the energy model).
type ICache struct {
	sets      int
	ways      int
	lineBytes int
	tags      []uint32
	valid     []bool
	mru       []uint8 // last-used way per set (LRU for 2-way; approx beyond)

	// evict, when set, is called with the byte address of each line a miss
	// fill displaces (decode-cache coherence: the core drops the displaced
	// line's pre-decoded entries).
	evict func(lineAddr uint32)
}

// SetEvictHook registers the eviction callback (nil disables it).
func (c *ICache) SetEvictHook(fn func(lineAddr uint32)) { c.evict = fn }

// NewICache builds a cache of the given geometry. Sets must come out a
// power of two; the geometry is configuration input, so a bad shape is a
// validated error, not a panic.
func NewICache(bytes, ways, lineBytes int) (*ICache, error) {
	sets := bytes / (ways * lineBytes)
	if sets < 1 {
		sets = 1
	}
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cpu: icache sets %d must be a power of two (%d B, %d-way, %d B lines)",
			sets, bytes, ways, lineBytes)
	}
	return &ICache{
		sets: sets, ways: ways, lineBytes: lineBytes,
		tags:  make([]uint32, sets*ways),
		valid: make([]bool, sets*ways),
		mru:   make([]uint8, sets),
	}, nil
}

// Access looks byteAddr up, filling on miss, and reports whether it hit.
func (c *ICache) Access(byteAddr uint32) bool {
	lineNum := byteAddr / uint32(c.lineBytes)
	set := int(lineNum) & (c.sets - 1)
	tag := lineNum
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.mru[set] = uint8(w)
			return true
		}
	}
	// Miss: fill, evicting a non-MRU way (true LRU for 2 ways).
	victim := -1
	for w := 0; w < c.ways; w++ {
		if !c.valid[base+w] {
			victim = w
			break
		}
	}
	if victim < 0 {
		victim = (int(c.mru[set]) + 1) % c.ways
	}
	if c.valid[base+victim] && c.evict != nil {
		c.evict(c.tags[base+victim] * uint32(c.lineBytes))
	}
	c.valid[base+victim] = true
	c.tags[base+victim] = tag
	c.mru[set] = uint8(victim)
	return false
}
