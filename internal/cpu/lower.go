package cpu

// Program lowering: the decode work the old interpreter redid every cycle —
// operand field extraction, source/WAW readiness set computation, latency
// lookups, class/predicability/control-flow tests — is done once per
// (program, configuration) at machine build time. Each instruction becomes a
// lowEntry holding its readiness metadata and a closure that performs its
// semantics with the operands and latencies already resolved. The Lowered
// table is immutable and shared by every core of a machine; per-core decode
// *state* (which PCs the core currently holds decoded, coherent with its
// I-cache) lives in Core.decoded.

import (
	"math"

	"rockcress/internal/config"
	"rockcress/internal/inet"
	"rockcress/internal/isa"
	"rockcress/internal/stats"
)

// vecCheck selects which SIMD source registers an op waits on (the vec-op
// switch of the old checkSources, precomputed).
type vecCheck uint8

const (
	vecNone  vecCheck = iota
	vecS1S2           // vfadd/vfsub/vfmul
	vecS1S2D          // vfma (accumulator is also a source)
	vecS1D            // vfmaF
	vecS1             // vfmulF/vswsp/vfredsum
)

// execFn performs one non-control instruction's semantics at cycle now. It
// may refuse (resource hazards discovered at execution).
type execFn func(c *Core, now int64) (bool, stats.StallKind)

// ctlFn resolves one control-flow instruction (sources already checked).
type ctlFn func(c *Core, now int64, micro bool) (bool, stats.StallKind)

// lowEntry is one pre-lowered instruction.
type lowEntry struct {
	exec execFn
	ctl  ctlFn // non-nil exactly when the op is control flow

	// Source readiness (scoreboard check), in the old checkSources order:
	// int sources, fp sources, vec sources, then WAW int/fp/vec.
	srcInt        [3]isa.Reg
	srcFp         [3]isa.FReg
	nInt, nFp     uint8
	vec           vecCheck
	vs1, vs2, vd  uint8
	wawInt, wawFp bool
	wawVec        bool
	rd            isa.Reg
	fd            isa.FReg

	pred    bool // predicated-off execution turns it into a nop
	vend    bool // microthread terminator (expander fetch loop)
	allowMT bool
	class   uint8

	// Park-probe flags: ops whose blocked exec path is side-effect free and
	// resolved by a mesh delivery (frameWait) or a same-shard inet pop
	// (sendWait), so a core stalled on them may sleep (see Core.Park).
	frameWait bool // frame_start waiting on the next frame to fill
	sendWait  bool // vissue/devec waiting on the expander queue
}

// Lowered is a program lowered against one hardware configuration.
type Lowered struct {
	Prog *isa.Program
	ents []lowEntry
}

// LowerProgram lowers prog once for cfg. The result is immutable and safe to
// share across every core of a machine.
func LowerProgram(prog *isa.Program, cfg config.Manycore) *Lowered {
	l := &Lowered{Prog: prog, ents: make([]lowEntry, len(prog.Code))}
	for i := range prog.Code {
		lowerInstr(&l.ents[i], &prog.Code[i], cfg)
	}
	return l
}

func lowerInstr(e *lowEntry, in *isa.Instr, cfg config.Manycore) {
	e.nInt = uint8(in.IntSrcs(&e.srcInt))
	e.nFp = uint8(in.FpSrcs(&e.srcFp))
	e.vs1, e.vs2, e.vd = in.Vs1, in.Vs2, in.Vd
	switch in.Op {
	case isa.OpVfadd, isa.OpVfsub, isa.OpVfmul:
		e.vec = vecS1S2
	case isa.OpVfma:
		e.vec = vecS1S2D
	case isa.OpVfmaF:
		e.vec = vecS1D
	case isa.OpVfmulF, isa.OpVswSp, isa.OpVfredsum:
		e.vec = vecS1
	}
	e.wawInt = in.WritesInt()
	e.wawFp = in.WritesFp()
	switch in.Op {
	case isa.OpVlwSp, isa.OpVfadd, isa.OpVfsub, isa.OpVfmul, isa.OpVfmulF, isa.OpVbcastF:
		e.wawVec = true
	}
	e.rd, e.fd = in.Rd, in.Fd
	e.pred = isa.IsPredicatable(in.Op)
	e.vend = in.Op == isa.OpVend
	e.frameWait = in.Op == isa.OpFrameStart
	e.sendWait = in.Op == isa.OpVissue || in.Op == isa.OpDevec
	e.allowMT = isa.AllowedInMicrothread(in.Op)
	e.class = uint8(isa.Classify(in.Op))
	if isa.IsControlFlow(in.Op) {
		e.ctl = lowerControl(in)
		return
	}
	e.exec = lowerExec(in, cfg)
}

// lowerControl builds the resolver for one branch or jump. Field reads and
// the class constant are hoisted; the compare itself is the closure body.
func lowerControl(in *isa.Instr) ctlFn {
	rs1, rs2, rd := in.Rs1, in.Rs2, in.Rd
	imm := int(in.Imm)
	class := uint8(isa.Classify(in.Op))
	// next-pc helper is inlined per closure: cur is pc or vpc by mode.
	switch in.Op {
	case isa.OpBeq:
		return func(c *Core, now int64, micro bool) (bool, stats.StallKind) {
			c.branch(now, micro, c.intRegs[rs1] == c.intRegs[rs2], imm, class)
			return true, stats.StallNone
		}
	case isa.OpBne:
		return func(c *Core, now int64, micro bool) (bool, stats.StallKind) {
			c.branch(now, micro, c.intRegs[rs1] != c.intRegs[rs2], imm, class)
			return true, stats.StallNone
		}
	case isa.OpBlt:
		return func(c *Core, now int64, micro bool) (bool, stats.StallKind) {
			c.branch(now, micro, int32(c.intRegs[rs1]) < int32(c.intRegs[rs2]), imm, class)
			return true, stats.StallNone
		}
	case isa.OpBge:
		return func(c *Core, now int64, micro bool) (bool, stats.StallKind) {
			c.branch(now, micro, int32(c.intRegs[rs1]) >= int32(c.intRegs[rs2]), imm, class)
			return true, stats.StallNone
		}
	case isa.OpBltu:
		return func(c *Core, now int64, micro bool) (bool, stats.StallKind) {
			c.branch(now, micro, c.intRegs[rs1] < c.intRegs[rs2], imm, class)
			return true, stats.StallNone
		}
	case isa.OpBgeu:
		return func(c *Core, now int64, micro bool) (bool, stats.StallKind) {
			c.branch(now, micro, c.intRegs[rs1] >= c.intRegs[rs2], imm, class)
			return true, stats.StallNone
		}
	case isa.OpJal:
		return func(c *Core, now int64, micro bool) (bool, stats.StallKind) {
			next := c.curPC(micro) + 1
			c.writeInt(rd, uint32(next), now+1)
			c.st.CountClass(class)
			c.jumpTo(now, micro, imm, true)
			return true, stats.StallNone
		}
	case isa.OpJalr:
		return func(c *Core, now int64, micro bool) (bool, stats.StallKind) {
			next := c.curPC(micro) + 1
			// Write order matters when rd == rs1: the link register is
			// written first, so the target reads the link value.
			c.writeInt(rd, uint32(next), now+1)
			tgt := int(c.intRegs[rs1]) + imm
			c.st.CountClass(class)
			c.jumpTo(now, micro, tgt, true)
			return true, stats.StallNone
		}
	}
	op := in.Op
	return func(c *Core, now int64, micro bool) (bool, stats.StallKind) {
		c.fail("unimplemented control op %s", op)
		return true, stats.StallNone
	}
}

func (c *Core) curPC(micro bool) int {
	if micro {
		return c.vpc
	}
	return c.pc
}

// branch applies a resolved conditional branch: taken control flow pays the
// branch penalty (jumpTo), fall-through moves to next.
func (c *Core) branch(now int64, micro bool, taken bool, imm int, class uint8) {
	next := c.curPC(micro) + 1
	c.st.CountClass(class)
	if taken {
		c.jumpTo(now, micro, imm, true)
	} else {
		c.jumpTo(now, micro, next, false)
	}
}

// lowerExec builds the semantics closure for one non-control instruction.
// Latencies come from cfg once; operand fields are captured as locals.
func lowerExec(in *isa.Instr, cfg config.Manycore) execFn {
	aluLat := int64(cfg.ALULat)
	fpALULat := int64(cfg.FpALULat)
	rd, rs1, rs2, rs3 := in.Rd, in.Rs1, in.Rs2, in.Rs3
	fd, fs1, fs2, fs3 := in.Fd, in.Fs1, in.Fs2, in.Fs3
	vd, vs1, vs2 := in.Vd, in.Vs1, in.Vs2
	imm := in.Imm
	uimm := uint32(in.Imm)

	switch in.Op {
	case isa.OpNop:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			return true, stats.StallNone
		}
	case isa.OpAdd:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeInt(rd, c.intRegs[rs1]+c.intRegs[rs2], now+aluLat)
			return true, stats.StallNone
		}
	case isa.OpSub:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeInt(rd, c.intRegs[rs1]-c.intRegs[rs2], now+aluLat)
			return true, stats.StallNone
		}
	case isa.OpMul:
		mulLat := int64(cfg.MulLat)
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeInt(rd, uint32(int32(c.intRegs[rs1])*int32(c.intRegs[rs2])), now+mulLat)
			return true, stats.StallNone
		}
	case isa.OpDiv, isa.OpRem:
		divLat := int64(cfg.DivLat)
		isRem := in.Op == isa.OpRem
		return func(c *Core, now int64) (bool, stats.StallKind) {
			if now < c.divBusyUntil {
				return false, stats.StallOther
			}
			c.divBusyUntil = now + divLat
			a, b := int32(c.intRegs[rs1]), int32(c.intRegs[rs2])
			var q, rem int32
			switch {
			case b == 0:
				q, rem = -1, a
			case a == -1<<31 && b == -1:
				q, rem = a, 0
			default:
				q, rem = a/b, a%b
			}
			v := q
			if isRem {
				v = rem
			}
			c.writeInt(rd, uint32(v), now+divLat)
			return true, stats.StallNone
		}
	case isa.OpAnd:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeInt(rd, c.intRegs[rs1]&c.intRegs[rs2], now+aluLat)
			return true, stats.StallNone
		}
	case isa.OpOr:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeInt(rd, c.intRegs[rs1]|c.intRegs[rs2], now+aluLat)
			return true, stats.StallNone
		}
	case isa.OpXor:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeInt(rd, c.intRegs[rs1]^c.intRegs[rs2], now+aluLat)
			return true, stats.StallNone
		}
	case isa.OpSll:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeInt(rd, c.intRegs[rs1]<<(c.intRegs[rs2]&31), now+aluLat)
			return true, stats.StallNone
		}
	case isa.OpSrl:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeInt(rd, c.intRegs[rs1]>>(c.intRegs[rs2]&31), now+aluLat)
			return true, stats.StallNone
		}
	case isa.OpSra:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeInt(rd, uint32(int32(c.intRegs[rs1])>>(c.intRegs[rs2]&31)), now+aluLat)
			return true, stats.StallNone
		}
	case isa.OpSlt:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeInt(rd, b2u(int32(c.intRegs[rs1]) < int32(c.intRegs[rs2])), now+aluLat)
			return true, stats.StallNone
		}
	case isa.OpSltu:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeInt(rd, b2u(c.intRegs[rs1] < c.intRegs[rs2]), now+aluLat)
			return true, stats.StallNone
		}
	case isa.OpAddi:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeInt(rd, c.intRegs[rs1]+uimm, now+aluLat)
			return true, stats.StallNone
		}
	case isa.OpAndi:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeInt(rd, c.intRegs[rs1]&uimm, now+aluLat)
			return true, stats.StallNone
		}
	case isa.OpOri:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeInt(rd, c.intRegs[rs1]|uimm, now+aluLat)
			return true, stats.StallNone
		}
	case isa.OpXori:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeInt(rd, c.intRegs[rs1]^uimm, now+aluLat)
			return true, stats.StallNone
		}
	case isa.OpSlli:
		sh := uimm & 31
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeInt(rd, c.intRegs[rs1]<<sh, now+aluLat)
			return true, stats.StallNone
		}
	case isa.OpSrli:
		sh := uimm & 31
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeInt(rd, c.intRegs[rs1]>>sh, now+aluLat)
			return true, stats.StallNone
		}
	case isa.OpSrai:
		sh := uimm & 31
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeInt(rd, uint32(int32(c.intRegs[rs1])>>sh), now+aluLat)
			return true, stats.StallNone
		}
	case isa.OpSlti:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeInt(rd, b2u(int32(c.intRegs[rs1]) < imm), now+aluLat)
			return true, stats.StallNone
		}
	case isa.OpLi:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeInt(rd, uimm, now+aluLat)
			return true, stats.StallNone
		}

	case isa.OpFadd:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeFp(fd, c.fpRegs[fs1]+c.fpRegs[fs2], now+fpALULat)
			return true, stats.StallNone
		}
	case isa.OpFsub:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeFp(fd, c.fpRegs[fs1]-c.fpRegs[fs2], now+fpALULat)
			return true, stats.StallNone
		}
	case isa.OpFmul:
		fpMulLat := int64(cfg.FpMulLat)
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeFp(fd, c.fpRegs[fs1]*c.fpRegs[fs2], now+fpMulLat)
			return true, stats.StallNone
		}
	case isa.OpFmadd:
		fpMulLat := int64(cfg.FpMulLat)
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeFp(fd, c.fpRegs[fs1]*c.fpRegs[fs2]+c.fpRegs[fs3], now+fpMulLat)
			return true, stats.StallNone
		}
	case isa.OpFdiv:
		fpDivLat := int64(cfg.FpDivLat)
		return func(c *Core, now int64) (bool, stats.StallKind) {
			if now < c.divBusyUntil {
				return false, stats.StallOther
			}
			c.divBusyUntil = now + fpDivLat
			c.writeFp(fd, c.fpRegs[fs1]/c.fpRegs[fs2], now+fpDivLat)
			return true, stats.StallNone
		}
	case isa.OpFsqrt:
		fpDivLat := int64(cfg.FpDivLat)
		return func(c *Core, now int64) (bool, stats.StallKind) {
			if now < c.divBusyUntil {
				return false, stats.StallOther
			}
			c.divBusyUntil = now + fpDivLat
			c.writeFp(fd, sqrt32(c.fpRegs[fs1]), now+fpDivLat)
			return true, stats.StallNone
		}
	case isa.OpFmin:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeFp(fd, min64f(c.fpRegs[fs1], c.fpRegs[fs2]), now+fpALULat)
			return true, stats.StallNone
		}
	case isa.OpFmax:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeFp(fd, max64f(c.fpRegs[fs1], c.fpRegs[fs2]), now+fpALULat)
			return true, stats.StallNone
		}
	case isa.OpFabs:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeFp(fd, abs32(c.fpRegs[fs1]), now+fpALULat)
			return true, stats.StallNone
		}
	case isa.OpFneg:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeFp(fd, -c.fpRegs[fs1], now+fpALULat)
			return true, stats.StallNone
		}
	case isa.OpFmv:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeFp(fd, c.fpRegs[fs1], now+fpALULat)
			return true, stats.StallNone
		}
	case isa.OpFeq:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeInt(rd, b2u(c.fpRegs[fs1] == c.fpRegs[fs2]), now+fpALULat)
			return true, stats.StallNone
		}
	case isa.OpFlt:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeInt(rd, b2u(c.fpRegs[fs1] < c.fpRegs[fs2]), now+fpALULat)
			return true, stats.StallNone
		}
	case isa.OpFle:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeInt(rd, b2u(c.fpRegs[fs1] <= c.fpRegs[fs2]), now+fpALULat)
			return true, stats.StallNone
		}
	case isa.OpFcvtWS:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeInt(rd, uint32(int32(c.fpRegs[fs1])), now+fpALULat)
			return true, stats.StallNone
		}
	case isa.OpFcvtSW:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeFp(fd, float32(int32(c.intRegs[rs1])), now+fpALULat)
			return true, stats.StallNone
		}
	case isa.OpFmvXW:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeInt(rd, f32bits(c.fpRegs[fs1]), now+fpALULat)
			return true, stats.StallNone
		}
	case isa.OpFmvWX:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeFp(fd, f32frombits(c.intRegs[rs1]), now+fpALULat)
			return true, stats.StallNone
		}

	case isa.OpLw:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			return c.globalLoad(now, rs1, uimm, false, uint8(rd), 0)
		}
	case isa.OpFlw:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			return c.globalLoad(now, rs1, uimm, true, 0, uint8(fd))
		}
	case isa.OpSw:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			return c.globalStore(now, rs1, uimm, c.intRegs[rs2])
		}
	case isa.OpFsw:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			return c.globalStore(now, rs1, uimm, f32bits(c.fpRegs[fs2]))
		}

	case isa.OpLwSp:
		spadHitLat := int64(cfg.SpadHitLat)
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeInt(rd, c.spad.ReadWord(c.intRegs[rs1]+uimm), now+spadHitLat)
			return true, stats.StallNone
		}
	case isa.OpFlwSp:
		spadHitLat := int64(cfg.SpadHitLat)
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeFp(fd, f32frombits(c.spad.ReadWord(c.intRegs[rs1]+uimm)), now+spadHitLat)
			return true, stats.StallNone
		}
	case isa.OpSwSp:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.spad.WriteWord(c.intRegs[rs1]+uimm, c.intRegs[rs2])
			return true, stats.StallNone
		}
	case isa.OpFswSp:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.spad.WriteWord(c.intRegs[rs1]+uimm, f32bits(c.fpRegs[fs2]))
			return true, stats.StallNone
		}
	case isa.OpSwRemote:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			return c.remoteStore(now, rs3, rs1, uimm, c.intRegs[rs2])
		}
	case isa.OpFswRemote:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			return c.remoteStore(now, rs3, rs1, uimm, f32bits(c.fpRegs[fs2]))
		}

	case isa.OpCsrw:
		inp := in
		return func(c *Core, now int64) (bool, stats.StallKind) {
			return c.execCsrw(now, inp)
		}
	case isa.OpCsrr:
		csr := in.Csr
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.writeInt(rd, c.readCSR(csr), now+aluLat)
			return true, stats.StallNone
		}

	case isa.OpVissue:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			if len(c.outQs) != 1 {
				c.fail("vissue outside a scalar role")
				return true, stats.StallNone
			}
			if !c.outQs[0].CanSend() {
				return false, stats.StallBackpressure
			}
			c.outQs[0].Send(now, inet.Item{Kind: inet.ItemMTStart, PC: imm})
			c.st.Microthreads++
			return true, stats.StallNone
		}
	case isa.OpDevec:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			if len(c.outQs) != 1 {
				c.fail("devec outside a scalar role")
				return true, stats.StallNone
			}
			if !c.outQs[0].CanSend() {
				return false, stats.StallBackpressure
			}
			c.outQs[0].Send(now, inet.Item{Kind: inet.ItemDevec, PC: imm})
			c.mode = ModeIndependent
			return true, stats.StallNone
		}
	case isa.OpVend:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			// Handled by the expander's fetch loop; lanes never receive it.
			c.fail("vend executed outside expander fetch")
			return true, stats.StallNone
		}
	case isa.OpFrameStart:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			if !c.spad.FrameReady() {
				return false, stats.StallFrame
			}
			c.writeInt(rd, c.spad.FrameBase(), now+1)
			return true, stats.StallNone
		}
	case isa.OpRemem:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.spad.FreeFrame()
			return true, stats.StallNone
		}
	case isa.OpVload:
		inp := in
		return func(c *Core, now int64) (bool, stats.StallKind) {
			return c.execVload(now, inp)
		}
	case isa.OpPredEq:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.predOn = c.intRegs[rs1] == c.intRegs[rs2]
			return true, stats.StallNone
		}
	case isa.OpPredNeq:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.predOn = c.intRegs[rs1] != c.intRegs[rs2]
			return true, stats.StallNone
		}

	case isa.OpVlwSp:
		w := cfg.SIMDWidth
		spadHitLat := int64(cfg.SpadHitLat)
		return func(c *Core, now int64) (bool, stats.StallKind) {
			off := c.intRegs[rs1] + uimm
			dst := c.vecRegs[vd]
			for i := 0; i < w; i++ {
				dst[i] = f32frombits(c.spad.ReadWord(off + uint32(4*i)))
			}
			c.vecReady[vd] = now + spadHitLat
			return true, stats.StallNone
		}
	case isa.OpVswSp:
		w := cfg.SIMDWidth
		return func(c *Core, now int64) (bool, stats.StallKind) {
			off := c.intRegs[rs1] + uimm
			src := c.vecRegs[vs1]
			for i := 0; i < w; i++ {
				c.spad.WriteWord(off+uint32(4*i), f32bits(src[i]))
			}
			return true, stats.StallNone
		}
	case isa.OpVfadd:
		simdLat := int64(cfg.SIMDLat)
		return func(c *Core, now int64) (bool, stats.StallKind) {
			a, b, d := c.vecRegs[vs1], c.vecRegs[vs2], c.vecRegs[vd]
			for i := range d {
				d[i] = a[i] + b[i]
			}
			c.vecReady[vd] = now + simdLat
			return true, stats.StallNone
		}
	case isa.OpVfsub:
		simdLat := int64(cfg.SIMDLat)
		return func(c *Core, now int64) (bool, stats.StallKind) {
			a, b, d := c.vecRegs[vs1], c.vecRegs[vs2], c.vecRegs[vd]
			for i := range d {
				d[i] = a[i] - b[i]
			}
			c.vecReady[vd] = now + simdLat
			return true, stats.StallNone
		}
	case isa.OpVfmul:
		simdLat := int64(cfg.SIMDLat)
		return func(c *Core, now int64) (bool, stats.StallKind) {
			a, b, d := c.vecRegs[vs1], c.vecRegs[vs2], c.vecRegs[vd]
			for i := range d {
				d[i] = a[i] * b[i]
			}
			c.vecReady[vd] = now + simdLat
			return true, stats.StallNone
		}
	case isa.OpVfma:
		simdLat := int64(cfg.SIMDLat)
		return func(c *Core, now int64) (bool, stats.StallKind) {
			a, b, d := c.vecRegs[vs1], c.vecRegs[vs2], c.vecRegs[vd]
			for i := range d {
				d[i] += a[i] * b[i]
			}
			c.vecReady[vd] = now + simdLat
			return true, stats.StallNone
		}
	case isa.OpVfmaF:
		simdLat := int64(cfg.SIMDLat)
		return func(c *Core, now int64) (bool, stats.StallKind) {
			a, d, s := c.vecRegs[vs1], c.vecRegs[vd], c.fpRegs[fs3]
			for i := range d {
				d[i] += a[i] * s
			}
			c.vecReady[vd] = now + simdLat
			return true, stats.StallNone
		}
	case isa.OpVfmulF:
		simdLat := int64(cfg.SIMDLat)
		return func(c *Core, now int64) (bool, stats.StallKind) {
			a, d, s := c.vecRegs[vs1], c.vecRegs[vd], c.fpRegs[fs3]
			for i := range d {
				d[i] = a[i] * s
			}
			c.vecReady[vd] = now + simdLat
			return true, stats.StallNone
		}
	case isa.OpVbcastF:
		simdLat := int64(cfg.SIMDLat)
		return func(c *Core, now int64) (bool, stats.StallKind) {
			d, s := c.vecRegs[vd], c.fpRegs[fs3]
			for i := range d {
				d[i] = s
			}
			c.vecReady[vd] = now + simdLat
			return true, stats.StallNone
		}
	case isa.OpVfredsum:
		simdLat := int64(cfg.SIMDLat)
		return func(c *Core, now int64) (bool, stats.StallKind) {
			var sum float32
			for _, v := range c.vecRegs[vs1] {
				sum += v
			}
			c.writeFp(fd, sum, now+simdLat+2)
			return true, stats.StallNone
		}

	case isa.OpBarrier:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.state = stBarrier
			c.ticket = c.env.BarrierArrive(c.ID)
			return true, stats.StallNone
		}
	case isa.OpHalt:
		return func(c *Core, now int64) (bool, stats.StallKind) {
			c.halted = true
			c.env.NotifyHalt(c.ID)
			return true, stats.StallNone
		}
	}
	op := in.Op
	return func(c *Core, now int64) (bool, stats.StallKind) {
		c.fail("unimplemented op %s", op)
		return true, stats.StallNone
	}
}

// checkLow verifies every source register (and the destination, for
// write-after-write) is ready at cycle now, using the pre-lowered readiness
// sets. Check order and stall classing are identical to the old
// checkSources: int sources, fp sources, vec sources, then WAW int/fp/vec;
// stalls on registers awaiting a memory response class as frame stalls.
//
// On a stall it also reports the first cycle at which the stall's
// classification could change, for the park probe. checkLow returns at the
// FIRST blocker in a fixed order, and ready times are frozen while a core
// sleeps (only the core itself or a delivery — which wakes the shard —
// moves them), so until that blocker clears every skipped cycle records the
// same kind. Timer blockers clear at their ready cycle; pending blockers
// (awaiting a memory response) have no known cycle and return wake =
// MaxInt64 (the resolving delivery wakes the core). The ||-joined vec
// conditions class uniformly as StallOther, so their flip cycle is the max
// of the blocked registers' ready times.
func (c *Core) checkLow(now int64, e *lowEntry) (bool, stats.StallKind, int64) {
	const never = int64(math.MaxInt64)
	for i := uint8(0); i < e.nInt; i++ {
		r := e.srcInt[i]
		if c.intReady[r] > now {
			if c.intPending&(1<<r) != 0 {
				return false, stats.StallFrame, never
			}
			return false, stats.StallOther, c.intReady[r]
		}
	}
	for i := uint8(0); i < e.nFp; i++ {
		f := e.srcFp[i]
		if c.fpReady[f] > now {
			if c.fpPending&(1<<f) != 0 {
				return false, stats.StallFrame, never
			}
			return false, stats.StallOther, c.fpReady[f]
		}
	}
	vecAt := int64(0)
	switch e.vec {
	case vecS1S2:
		vecAt = max64(c.vecReady[e.vs1], c.vecReady[e.vs2])
	case vecS1S2D:
		vecAt = max64(max64(c.vecReady[e.vs1], c.vecReady[e.vs2]), c.vecReady[e.vd])
	case vecS1D:
		vecAt = max64(c.vecReady[e.vs1], c.vecReady[e.vd])
	case vecS1:
		vecAt = c.vecReady[e.vs1]
	}
	if vecAt > now {
		return false, stats.StallOther, vecAt
	}
	if e.wawInt && c.intReady[e.rd] > now {
		if c.intPending&(1<<e.rd) != 0 {
			return false, stats.StallFrame, never
		}
		return false, stats.StallOther, c.intReady[e.rd]
	}
	if e.wawFp && c.fpReady[e.fd] > now {
		if c.fpPending&(1<<e.fd) != 0 {
			return false, stats.StallFrame, never
		}
		return false, stats.StallOther, c.fpReady[e.fd]
	}
	if e.wawVec && c.vecReady[e.vd] > now {
		return false, stats.StallOther, c.vecReady[e.vd]
	}
	return true, stats.StallNone, 0
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// issueAt attempts to execute the instruction at pc at cycle now, honouring
// predication, scoreboard, and structural hazards, via its pre-lowered
// entry. It returns whether the instruction issued and, if not, the stall
// class.
func (c *Core) issueAt(now int64, pc int) (bool, stats.StallKind) {
	e := &c.low.ents[pc]
	if e.ctl != nil {
		if ok, stall, wake := c.checkLow(now, e); !ok {
			c.noteStall(now, stall, wake, checkNone)
			return false, stall
		}
		return e.ctl(c, now, c.mode == ModeVector)
	}
	// Predicated-off instructions execute as nops but still flow through
	// the pipeline (and the inet), costing a cycle (§2.4).
	if !c.predOn && e.pred {
		c.st.PredNops++
		c.st.CountClass(uint8(isa.ClassNop))
		if c.mode != ModeVector {
			c.setPC(c.pc + 1)
		}
		return true, stats.StallNone
	}
	if ok, stall, wake := c.checkLow(now, e); !ok {
		c.noteStall(now, stall, wake, checkNone)
		return false, stall
	}
	if ok, stall := c.exec(now, e); !ok {
		return false, stall
	}
	c.st.CountClass(e.class)
	if c.mode != ModeVector && c.state == stRun && !c.halted {
		// Sequential PC advance for frontend-driven cores. Instructions
		// that enter a waiting state (vconfig, barrier) or vector mode
		// manage the PC themselves.
		c.setPC(c.pc + 1)
	}
	return true, stats.StallNone
}

// noteStall stashes the classification of this tick's issue stall for the
// park probe (see Core.Park). Valid for the tick at now only.
func (c *Core) noteStall(now int64, kind stats.StallKind, wake int64, check uint8) {
	c.stallAt = now
	c.stallKind = kind
	c.stallWake = wake
	c.stallCheck = check
}

// exec runs e's exec closure and, when it refuses, classifies the
// structural stall for the park probe: a frame-class stall (DAE frame not
// filled, load queue full) is pure and resolved only by a mesh delivery to
// this tile, which wakes the shard; a blocked vissue/devec drains when the
// same-shard expander pops its queue (re-verified live by Park). Anything
// else (mesh injection backpressure) resolves in the mesh stage without a
// wake, so no stash: the core keeps ticking.
func (c *Core) exec(now int64, e *lowEntry) (bool, stats.StallKind) {
	ok, stall := e.exec(c, now)
	if !ok {
		switch {
		case stall == stats.StallFrame:
			c.noteStall(now, stall, math.MaxInt64, checkNone)
		case e.sendWait && stall == stats.StallBackpressure:
			c.noteStall(now, stall, math.MaxInt64, checkSend)
		}
	}
	return ok, stall
}

// DecodeCached reports whether the decode cache currently holds pc's
// pre-lowered entry: set when the core issues the instruction, cleared when
// the icache line backing it is evicted (test hook).
func (c *Core) DecodeCached(pc int) bool {
	return pc >= 0 && pc < len(c.decoded) && c.decoded[pc]
}
