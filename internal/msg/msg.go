// Package msg defines the messages that travel on the data NoC between
// cores, LLC banks, and scratchpads. It exists below both the noc and mem
// packages so they can share payload types without an import cycle.
package msg

import (
	"fmt"

	"rockcress/internal/isa"
)

// Kind discriminates message payloads.
type Kind uint8

const (
	// KindLoadReq is a scalar word-load request from a core to an LLC bank.
	KindLoadReq Kind = iota
	// KindStoreReq is a non-blocking word store to an LLC bank.
	KindStoreReq
	// KindVloadReq is a wide vector load request (paper §3.4).
	KindVloadReq
	// KindLoadResp returns a scalar load's word to the requesting core's
	// load queue slot.
	KindLoadResp
	// KindSpadWord delivers one word of a wide load into a scratchpad,
	// incrementing the destination frame's counter.
	KindSpadWord
	// KindRemoteStore is a core-to-core scratchpad store (shuffles).
	KindRemoteStore
)

func (k Kind) String() string {
	switch k {
	case KindLoadReq:
		return "load-req"
	case KindStoreReq:
		return "store-req"
	case KindVloadReq:
		return "vload-req"
	case KindLoadResp:
		return "load-resp"
	case KindSpadWord:
		return "spad-word"
	case KindRemoteStore:
		return "remote-store"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MaxWords bounds how many data words one flit can carry: the widest legal
// NetWidthWords (config.Validate enforces NetWidthWords <= MaxWords). Vals
// is an inline array rather than a slice so messages never allocate — the
// steady-state simulation sends millions of them, and a flit's payload is a
// value, copied with the message as it moves through queues.
const MaxWords = 8

// Message is one NoC payload. A message occupies one flit; a KindSpadWord
// or KindLoadResp flit may carry up to the network width in consecutive
// words for a single destination (Words > 1). Only Vals[:Words] is
// meaningful.
type Message struct {
	Kind     Kind
	Src, Dst int    // NoC node ids
	Addr     uint32 // global byte address (requests)
	Vals     [MaxWords]uint32
	Words    int // request: words wanted; response: words carried

	// Load responses.
	LQSlot int // destination load-queue slot

	// Wide loads.
	SpadOff uint32 // destination scratchpad byte offset of the first word
	Vload   isa.VloadArgs
	Group   int // vector group id (-1 for self loads)
	ReqCore int // tile that issued the request (for self/group fan-out)

	// Causal journey stamps (-causal only; zero otherwise). Requests carry
	// CIssue (injection cycle) and accumulate CNocReq (request-plane hops)
	// and the DRAM decomposition on a miss; responses copy the request's
	// stamps and add CInject (response injection cycle) so delivery can
	// attribute the whole chain. See internal/causal.
	CIssue   int64 // cycle the request entered the request NoC
	CInject  int64 // cycle the response entered the response NoC
	CNocReq  int32 // request-plane traversal cycles
	CDramQ   int32 // DRAM channel queue + transfer wait cycles
	CDramLat int32 // DRAM access latency cycles
	CLlcQ    int32 // bank queue wait before service started (responses)
	CGated   int32 // bank cycles gated on response-mesh injection (responses)
}

// NodeSpace maps cores and LLC banks onto NoC node ids: tiles occupy
// [0, Cores), LLC banks occupy [Cores, Cores+Banks).
type NodeSpace struct {
	Cores int
	Banks int
}

// LLCNode returns the node id of bank b.
func (s NodeSpace) LLCNode(b int) int { return s.Cores + b }

// IsLLC reports whether node is an LLC bank, and which.
func (s NodeSpace) IsLLC(node int) (int, bool) {
	if node >= s.Cores && node < s.Cores+s.Banks {
		return node - s.Cores, true
	}
	return 0, false
}

// Nodes returns the total node count.
func (s NodeSpace) Nodes() int { return s.Cores + s.Banks }
