// Quickstart: build a kernel with the programming model of §4, form a
// vector group on a simulated 64-core fabric, stream data through the
// decoupled-access frames, and read the results back.
//
// The kernel scales a vector by two: the scalar core of each group issues
// wide group loads (one cache line feeds all four lanes), the lanes consume
// frames in lockstep, and everything is validated at the end.
package main

import (
	"fmt"
	"log"
	"math"

	"rockcress"
	"rockcress/internal/isa"
)

const (
	// nElems divides evenly into the 12 groups' frame batches (64 words).
	nElems   = 768
	inBase   = 0x10000
	outBase  = 0x20000
	laneWork = 16 // words each lane handles per frame batch
)

func buildProgram(groups []*rockcress.Group) (*rockcress.Program, error) {
	b := rockcress.NewBuilder("quickstart")
	vlen := groups[0].VLen()
	nGroups := len(groups)
	perGroup := nElems / nGroups // words per group (divides for the demo)

	// Role prologue: every tile learns its group and lane; tiles outside
	// any group go idle.
	gid, lane, none := b.Int(), b.Int(), b.Int()
	b.Csrr(gid, isa.CsrGroupID)
	b.Csrr(lane, isa.CsrLaneID)
	b.Li(none, -1)
	b.Beq(gid, none, "idle")

	// A group load is limited to one cache line, so each line's 16 words
	// split w per lane; a frame batches laneWork words per lane across
	// laneWork/w lines.
	w := 16 / vlen

	// Lane setup before entering vector mode: each lane's output pointer
	// starts at its w-word share of the group's first line.
	outPtr := b.Int()
	t := b.Int()
	b.Li(outPtr, int32(perGroup*4))
	b.Mul(outPtr, outPtr, gid)
	b.Li(t, int32(w*4))
	b.Mul(t, t, lane)
	b.Add(outPtr, outPtr, t)
	b.Addi(outPtr, outPtr, outBase)

	// Microthread: consume one frame of laneWork words, write 2*x out.
	// Frame word c*w+i came from line c, lane-offset word i, so it lands
	// at byte offset c*64 + 4*i of the lane's output share.
	fb := b.Int()
	fx, ftwo := b.Fp(), b.Fp()
	mtInit, _ := b.Microthread(func() { b.FliF(ftwo, 2) })
	stride := int32(vlen * laneWork * 4)
	mtScale, mtLen := b.Microthread(func() {
		b.FrameStart(fb)
		for c := 0; c < laneWork/w; c++ {
			for i := 0; i < w; i++ {
				b.FlwSp(fx, fb, int32(4*(c*w+i)))
				b.Fmul(fx, fx, ftwo)
				b.Fsw(fx, outPtr, int32(c*64+4*i))
			}
		}
		b.Addi(outPtr, outPtr, stride)
		b.Remem()
	})

	// Enter vector mode: configure frames, rendezvous, then the scalar
	// core drives the §4.2 decoupled-access pipeline.
	frames := 4
	b.ConfigFrames(laneWork, frames)
	b.Vectorize()
	b.VIssueAt(mtInit)
	// Scalar side: one GROUP load per frame batch fetches
	// vlen*laneWork consecutive words, one line-sized chunk per lane.
	addr, off := b.Int(), b.Int()
	b.Li(addr, int32(perGroup*4))
	b.Mul(addr, addr, gid)
	b.Addi(addr, addr, inBase)
	b.Li(off, 0)
	trips := perGroup / (vlen * laneWork)
	iter, bound := b.Int(), b.Int()
	b.Li(iter, 0)
	b.Li(bound, int32(trips))
	b.Label("pipe")
	toff := b.Int()
	for c := 0; c < laneWork/w; c++ {
		b.Addi(toff, off, int32(4*c*w))
		b.VLoad(isa.VloadGroup, addr, toff, 0, w, true)
		b.Addi(addr, addr, 64)
	}
	b.VIssueAt(mtScale)
	b.Addi(off, off, int32(laneWork*4))
	// Wrap the frame cursor.
	region := b.Int()
	b.Li(region, int32(laneWork*frames*4))
	b.Blt(off, region, "nowrap")
	b.Li(off, 0)
	b.Label("nowrap")
	b.Addi(iter, iter, 1)
	b.Blt(iter, bound, "pipe")
	b.Devectorize("done")
	b.Label("done")
	b.Barrier()
	b.Halt()
	b.Label("idle")
	b.Halt()
	_ = mtLen
	return b.Build()
}

func main() {
	hw := rockcress.DefaultManycore()
	groups, err := rockcress.MakeGroups(hw, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("formed %d vector groups of 4 lanes on a %dx%d fabric\n",
		len(groups), hw.MeshWidth, hw.MeshHeight)

	program, err := buildProgram(groups)
	if err != nil {
		log.Fatal(err)
	}
	m, err := rockcress.NewMachine(rockcress.MachineParams{
		Cfg: hw, Prog: program, Groups: groups,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < nElems; i++ {
		m.Global.WriteWord(uint32(inBase+4*i), math.Float32bits(float32(i)*0.25))
	}
	st, err := m.Run(10_000_000)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < nElems; i++ {
		got := math.Float32frombits(m.Global.ReadWord(uint32(outBase + 4*i)))
		want := float32(i) * 0.5
		if got != want {
			log.Fatalf("out[%d] = %g, want %g", i, got, want)
		}
	}
	fmt.Printf("scaled %d elements in %d cycles\n", nElems, st.Cycles)
	fmt.Printf("icache accesses: %d (vector lanes fetch nothing in vector mode)\n",
		st.TotalICacheAccesses())
	fmt.Println("all results verified")
}
