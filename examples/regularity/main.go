// regularity: the paper's core argument is that one fabric should serve
// both regular and irregular parallelism. This example runs a regular
// kernel (mvt, whose transposed half is the showcase for group loads) and
// an irregular one (bfs) under both the plain manycore mapping and a V4
// vector-group mapping — the winner flips with the workload's regularity,
// and run-time reconfiguration lets software pick per kernel (§6.6).
package main

import (
	"fmt"
	"log"

	"rockcress"
)

func cycles(bench, cfg string) int64 {
	res, err := rockcress.RunBenchmark(bench, cfg, rockcress.Small)
	if err != nil {
		log.Fatalf("%s/%s: %v", bench, cfg, err)
	}
	return res.Cycles()
}

func main() {
	fmt.Println("regular (mvt) vs irregular (bfs) on the same fabric")
	fmt.Println()
	fmt.Printf("%-8s %12s %12s %10s\n", "bench", "NV cycles", "V4 cycles", "V4 vs NV")
	for _, bench := range []string{"mvt", "bfs"} {
		nv := cycles(bench, "NV")
		v4 := cycles(bench, "V4")
		fmt.Printf("%-8s %12d %12d %9.2fx\n", bench, nv, v4, float64(nv)/float64(v4))
	}
	fmt.Println()
	fmt.Println("mvt wants vector groups; bfs wants independent cores.")
	fmt.Println("Software-defined vectors reconfigure between the two at run time.")
}
