// saxpy: the same y = a*x + y kernel built two ways — plain manycore with
// blocking word loads, and a V4 vector-group version that streams both
// operands through decoupled-access frames with group loads. Prints the
// cycle counts side by side: the DAE pipeline hides memory latency that
// the blocking version eats per element.
package main

import (
	"fmt"
	"log"
	"math"

	"rockcress"
	"rockcress/internal/isa"
)

const (
	n       = 3072 // divides into 12 groups x 4 lanes x 4-word shares x 16 lines
	xBase   = 0x10000
	yBase   = 0x40000
	aScalar = float32(1.5)
)

// buildNV: every core strides over elements with blocking loads.
func buildNV(hw rockcress.Manycore) (*rockcress.Program, error) {
	b := rockcress.NewBuilder("saxpy-nv")
	tid := b.Int()
	b.Csrr(tid, isa.CsrCoreID)
	fa, fx, fy := b.Fp(), b.Fp(), b.Fp()
	b.FliF(fa, aScalar)
	px, py, i, bound, t := b.Int(), b.Int(), b.Int(), b.Int(), b.Int()
	b.Slli(t, tid, 2)
	b.Li(px, xBase)
	b.Add(px, px, t)
	b.Li(py, yBase)
	b.Add(py, py, t)
	b.Mv(i, tid)
	b.Li(bound, n)
	b.Label("loop")
	b.Flw(fx, px, 0)
	b.Flw(fy, py, 0)
	b.Fmadd(fy, fx, fa, fy)
	b.Fsw(fy, py, 0)
	b.Addi(px, px, int32(4*hw.Cores))
	b.Addi(py, py, int32(4*hw.Cores))
	b.Addi(i, i, int32(hw.Cores))
	b.Blt(i, bound, "loop")
	b.Barrier()
	b.Halt()
	return b.Build()
}

// buildV4: groups stream x and y through frames; one group load per line.
func buildV4(groups []*rockcress.Group) (*rockcress.Program, error) {
	b := rockcress.NewBuilder("saxpy-v4")
	vlen := groups[0].VLen()
	nGroups := len(groups)
	perGroup := n / nGroups
	w := 16 / vlen     // words per lane per line
	const lines = 4    // lines per frame batch
	lane4 := w * lines // words per lane per frame
	frameWords := 2 * lane4

	gid, lane, none := b.Int(), b.Int(), b.Int()
	b.Csrr(gid, isa.CsrGroupID)
	b.Csrr(lane, isa.CsrLaneID)
	b.Li(none, -1)
	b.Beq(gid, none, "idle")

	outPtr, t := b.Int(), b.Int()
	b.Li(outPtr, int32(perGroup*4))
	b.Mul(outPtr, outPtr, gid)
	b.Li(t, int32(w*4))
	b.Mul(t, t, lane)
	b.Add(outPtr, outPtr, t)
	b.Addi(outPtr, outPtr, yBase)

	fb := b.Int()
	fa, fx, fy := b.Fp(), b.Fp(), b.Fp()
	mtInit, _ := b.Microthread(func() { b.FliF(fa, aScalar) })
	stride := int32(vlen * lane4 * 4)
	mtBody, _ := b.Microthread(func() {
		b.FrameStart(fb)
		for c := 0; c < lines; c++ {
			for i := 0; i < w; i++ {
				b.FlwSp(fx, fb, int32(4*(c*w+i)))
				b.FlwSp(fy, fb, int32(4*(lane4+c*w+i)))
				b.Fmadd(fy, fx, fa, fy)
				b.Fsw(fy, outPtr, int32(c*64+4*i))
			}
		}
		b.Addi(outPtr, outPtr, stride)
		b.Remem()
	})

	frames := 4
	b.ConfigFrames(frameWords, frames)
	b.Vectorize()
	b.VIssueAt(mtInit)
	px, py, off, toff := b.Int(), b.Int(), b.Int(), b.Int()
	b.Li(px, int32(perGroup*4))
	b.Mul(px, px, gid)
	b.Mv(py, px)
	b.Addi(px, px, xBase)
	b.Addi(py, py, yBase)
	b.Li(off, 0)
	iter, bound, region := b.Int(), b.Int(), b.Int()
	b.Li(iter, 0)
	b.Li(bound, int32(perGroup/(vlen*lane4)))
	b.Li(region, int32(frameWords*frames*4))
	b.Label("pipe")
	for c := 0; c < lines; c++ {
		b.Addi(toff, off, int32(4*c*w))
		b.VLoad(isa.VloadGroup, px, toff, 0, w, true)
		b.Addi(toff, off, int32(4*(lane4+c*w)))
		b.VLoad(isa.VloadGroup, py, toff, 0, w, true)
		b.Addi(px, px, 64)
		b.Addi(py, py, 64)
	}
	b.VIssueAt(mtBody)
	b.Addi(off, off, int32(frameWords*4))
	b.Blt(off, region, "nowrap")
	b.Li(off, 0)
	b.Label("nowrap")
	b.Addi(iter, iter, 1)
	b.Blt(iter, bound, "pipe")
	b.Devectorize("done")
	b.Label("done")
	b.Barrier()
	b.Halt()
	b.Label("idle")
	b.Halt()
	return b.Build()
}

func run(name string, prog *rockcress.Program, groups []*rockcress.Group) int64 {
	hw := rockcress.DefaultManycore()
	m, err := rockcress.NewMachine(rockcress.MachineParams{Cfg: hw, Prog: prog, Groups: groups})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		m.Global.WriteWord(uint32(xBase+4*i), math.Float32bits(float32(i)*0.125))
		m.Global.WriteWord(uint32(yBase+4*i), math.Float32bits(float32(i)*0.5))
	}
	st, err := m.Run(50_000_000)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	for i := 0; i < n; i++ {
		got := math.Float32frombits(m.Global.ReadWord(uint32(yBase + 4*i)))
		want := aScalar*float32(i)*0.125 + float32(i)*0.5
		if got != want {
			log.Fatalf("%s: y[%d] = %g, want %g", name, i, got, want)
		}
	}
	fmt.Printf("%-8s %8d cycles (verified)\n", name, st.Cycles)
	return st.Cycles
}

func main() {
	hw := rockcress.DefaultManycore()
	nvProg, err := buildNV(hw)
	if err != nil {
		log.Fatal(err)
	}
	groups, err := rockcress.MakeGroups(hw, 4)
	if err != nil {
		log.Fatal(err)
	}
	v4Prog, err := buildV4(groups)
	if err != nil {
		log.Fatal(err)
	}
	nv := run("NV", nvProg, nil)
	v4 := run("V4", v4Prog, groups)
	fmt.Printf("vector-group speedup: %.2fx\n", float64(nv)/float64(v4))
}
