// energysweep: the frontend-energy argument of §6.4. Sweeping one
// benchmark across the optimized manycore baseline and both vector lengths
// shows where the energy goes: vector groups shut down most frontends and
// I-caches, trading a little inet energy for a large fetch saving that
// grows with the vector length.
package main

import (
	"fmt"
	"log"

	"rockcress"
)

func main() {
	const bench = "2dconv"
	fmt.Printf("energy sweep: %s at small scale\n\n", bench)
	fmt.Printf("%-7s %10s %12s %10s %10s %10s %12s\n",
		"config", "cycles", "icache", "fetch pJ", "inet pJ", "noc pJ", "on-chip pJ")
	var base float64
	for _, cfg := range []string{"NV_PF", "V4", "V16"} {
		res, err := rockcress.RunBenchmark(bench, cfg, rockcress.Small)
		if err != nil {
			log.Fatalf("%s: %v", cfg, err)
		}
		e := res.Energy
		if cfg == "NV_PF" {
			base = e.OnChip()
		}
		fmt.Printf("%-7s %10d %12d %10.3g %10.3g %10.3g %10.3g (%.0f%%)\n",
			cfg, res.Cycles(), res.Stats.TotalICacheAccesses(),
			e.Fetch, e.INet, e.NoC, e.OnChip(), 100*e.OnChip()/base)
	}
	fmt.Println("\nfetch energy falls with vector length as lanes stop touching")
	fmt.Println("their I-caches; the inet's register hops replace it at ~1/10 cost.")
}
