// Command rockasm assembles and disassembles Rockcress ISA text, and can
// run a program directly on a simulated fabric.
//
// Usage:
//
//	rockasm -in prog.s                 # assemble + validate, print summary
//	rockasm -in prog.s -dis            # round-trip back to text
//	rockasm -in prog.s -run            # run on a 64-core fabric, print stats
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"rockcress/internal/asm"
	"rockcress/internal/config"
	"rockcress/internal/lifecycle"
	"rockcress/internal/machine"
	"rockcress/internal/metrics"
)

func main() {
	var (
		inPath  = flag.String("in", "", "assembly source file (required)")
		disFlag = flag.Bool("dis", false, "print the round-tripped disassembly")
		runFlag = flag.Bool("run", false, "run the program on a default fabric")
		budget  = flag.Int64("max-cycles", 50_000_000, "simulation budget for -run")
		timeout = flag.Duration("timeout", 0, "wall-clock budget for -run (0 = unlimited)")
		listen  = flag.String("listen", "", "serve live introspection for -run on this address (/metrics, /debug/machine, /debug/pprof/)")
	)
	flag.Parse()
	if *inPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*inPath)
	if err != nil {
		fatal(err)
	}
	prog, err := asm.Assemble(*inPath, string(src))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d instructions, %d labels\n", *inPath, len(prog.Code), len(prog.Labels))
	if *disFlag {
		fmt.Print(asm.Disassemble(prog))
	}
	if *runFlag {
		// SIGINT/SIGTERM abort the run at its next watchdog checkpoint.
		ctx, stop := lifecycle.WithSignals(context.Background())
		defer stop()
		var deadline time.Time
		if *timeout > 0 {
			deadline = time.Now().Add(*timeout)
		}
		var plane *metrics.Plane
		if *listen != "" {
			plane = metrics.NewPlane("")
			srv, err := metrics.Serve(*listen, plane)
			if err != nil {
				fatal(err)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "# observability: http://%s\n", srv.Addr())
		}
		m, err := machine.New(machine.Params{Cfg: config.ManycoreDefault(), Prog: prog,
			Ctx: ctx, WallDeadline: deadline, Obs: plane})
		if err != nil {
			fatal(err)
		}
		st, err := m.Run(*budget)
		if err != nil {
			fatal(err)
		}
		fmt.Print(st.Summary())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rockasm:", err)
	if lifecycle.Interrupted(err) {
		os.Exit(lifecycle.ExitCodeInterrupted)
	}
	os.Exit(1)
}
