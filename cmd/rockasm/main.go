// Command rockasm assembles and disassembles Rockcress ISA text, and can
// run a program directly on a simulated fabric.
//
// Usage:
//
//	rockasm -in prog.s                 # assemble + validate, print summary
//	rockasm -in prog.s -dis            # round-trip back to text
//	rockasm -in prog.s -run            # run on a 64-core fabric, print stats
package main

import (
	"flag"
	"fmt"
	"os"

	"rockcress/internal/asm"
	"rockcress/internal/config"
	"rockcress/internal/machine"
)

func main() {
	var (
		inPath  = flag.String("in", "", "assembly source file (required)")
		disFlag = flag.Bool("dis", false, "print the round-tripped disassembly")
		runFlag = flag.Bool("run", false, "run the program on a default fabric")
		budget  = flag.Int64("max-cycles", 50_000_000, "simulation budget for -run")
	)
	flag.Parse()
	if *inPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*inPath)
	if err != nil {
		fatal(err)
	}
	prog, err := asm.Assemble(*inPath, string(src))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d instructions, %d labels\n", *inPath, len(prog.Code), len(prog.Labels))
	if *disFlag {
		fmt.Print(asm.Disassemble(prog))
	}
	if *runFlag {
		m, err := machine.New(machine.Params{Cfg: config.ManycoreDefault(), Prog: prog})
		if err != nil {
			fatal(err)
		}
		st, err := m.Run(*budget)
		if err != nil {
			fatal(err)
		}
		fmt.Print(st.Summary())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rockasm:", err)
	os.Exit(1)
}
