package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"rockcress/internal/metrics"
)

// watch polls a live rocksim/rockbench -listen endpoint's /debug/run view
// and renders sweep progress as a refreshing status line: cells done/planned,
// the in-flight cells with their ladder attempt, the simulated-MIPS meter,
// and the ETA. It runs until interrupted or until the sweep goes idle after
// having been seen running.
func watch(ctx context.Context, args []string) error {
	interval := time.Second
	if len(args) == 2 {
		d, err := time.ParseDuration(args[1])
		if err != nil || d <= 0 {
			return fmt.Errorf("usage: rockdoctor watch http://HOST:PORT [interval]")
		}
		interval = d
	} else if len(args) != 1 {
		return fmt.Errorf("usage: rockdoctor watch http://HOST:PORT [interval]")
	}
	base := strings.TrimSuffix(args[0], "/")
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	url := base + "/debug/run"
	client := &http.Client{Timeout: 5 * time.Second}

	sawRunning := false
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		snap, err := fetchRun(ctx, client, url)
		if err != nil {
			if ctx.Err() != nil {
				fmt.Println()
				return ctx.Err()
			}
			return err
		}
		line := renderRun(snap)
		// Overwrite the previous status line in place; terminals without
		// ANSI handling still get one readable line per poll.
		fmt.Printf("\r\033[2K%s", line)
		if snap.State == "running" {
			sawRunning = true
		} else if sawRunning {
			fmt.Println()
			fmt.Printf("sweep finished: %d done, %d failed\n",
				snap.Sweep.Done, snap.Sweep.Failed)
			return nil
		}
		select {
		case <-ctx.Done():
			fmt.Println()
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

func fetchRun(ctx context.Context, client *http.Client, url string) (*metrics.RunSnap, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: HTTP %s", url, resp.Status)
	}
	var snap metrics.RunSnap
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("%s: %w", url, err)
	}
	return &snap, nil
}

// renderRun formats one /debug/run snapshot as a single status line.
func renderRun(s *metrics.RunSnap) string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %d/%d cells", s.State, s.Sweep.Done+s.Sweep.Failed, s.Sweep.Planned)
	if s.Sweep.Failed > 0 {
		fmt.Fprintf(&b, " (%d failed)", s.Sweep.Failed)
	}
	if s.Sim.Mips > 0 {
		fmt.Fprintf(&b, "  %.1f Msim-cycles/s", s.Sim.Mips)
	}
	if s.Sweep.EtaS > 0 {
		fmt.Fprintf(&b, "  eta %s", (time.Duration(s.Sweep.EtaS * float64(time.Second))).Round(time.Second))
	}
	if s.Flight.Dumps > 0 {
		fmt.Fprintf(&b, "  flight-dumps %d", s.Flight.Dumps)
	}
	if n := len(s.Active); n > 0 {
		b.WriteString("  | ")
		const maxShown = 4
		for i, a := range s.Active {
			if i == maxShown {
				fmt.Fprintf(&b, " +%d more", n-maxShown)
				break
			}
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s/%s", a.Kernel, a.Config)
			if a.Attempt > 1 {
				fmt.Fprintf(&b, "#%d", a.Attempt)
			}
		}
	}
	return b.String()
}

// flight reads a dumped flight-recorder bundle and renders its forensics:
// why it was written, which run and ladder attempt it covers, the machine's
// final heatmap headline, and the tail of the rare-event note ring.
func flightCmd(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: rockdoctor flight flight-REASON-*.json")
	}
	b, err := metrics.ReadBundle(args[0])
	if err != nil {
		return err
	}
	fmt.Printf("flight bundle: %s\n", args[0])
	fmt.Printf("reason:  %s (written %s)\n", b.Reason, b.WrittenAt.Format(time.RFC3339))
	if b.Run != "" {
		fmt.Printf("run:     %s (attempt %d)\n", b.Run, b.Attempt)
	}
	if b.Error != "" {
		fmt.Printf("error:   %s\n", b.Error)
	}
	if m := b.Machine; m != nil {
		fmt.Printf("machine: cycle %d, %dx%d mesh, %d tiles, frames occupied %d, inet high-water %d\n",
			m.Cycle, m.MeshW, m.MeshH, len(m.Tiles), m.FramesOccupied, m.InetHighWater)
		if t := stalledTile(m); t != nil {
			total := t.Frame + t.Inet + t.Backpressure + t.Other
			fmt.Printf("most-stalled tile: %d (%s) — %d stall cycles (frame %d, inet %d, backpressure %d, other %d)\n",
				t.Tile, t.Role, total, t.Frame, t.Inet, t.Backpressure, t.Other)
		}
	}
	fmt.Printf("windows: %d retained telemetry windows\n", len(b.Windows))
	fmt.Printf("notes:   %d rare events", len(b.Notes))
	const tail = 15
	notes := b.Notes
	if len(notes) > tail {
		fmt.Printf(" (last %d shown)", tail)
		notes = notes[len(notes)-tail:]
	}
	fmt.Println()
	for _, n := range notes {
		line := fmt.Sprintf("  cycle %10d  %-18s %s", n.Cycle, n.Kind, n.Detail)
		if n.Run != "" {
			line += "  [" + n.Run
			if n.Attempt > 1 {
				line += fmt.Sprintf(" attempt %d", n.Attempt)
			}
			line += "]"
		}
		fmt.Println(line)
	}
	if b.TileState != "" {
		fmt.Printf("\ntile state at failure:\n%s\n", b.TileState)
	}
	return nil
}

// stalledTile returns the tile with the largest total stall count, or nil.
func stalledTile(m *metrics.MachineSnap) *metrics.TileSnap {
	var best *metrics.TileSnap
	var bestStall int64 = -1
	for i := range m.Tiles {
		t := &m.Tiles[i]
		s := t.Frame + t.Inet + t.Backpressure + t.Other
		if s > bestStall {
			best, bestStall = t, s
		}
	}
	return best
}
