// Command rockdoctor interprets the artifacts a simulation leaves behind:
// per-run reports, windowed telemetry, and Perfetto event traces. It never
// runs a simulation itself — rocksim -report / rockbench -report produce
// the inputs; rockdoctor explains them.
//
// Usage:
//
//	rockdoctor explain report.json        # verdict + evidence + CPI stacks
//	rockdoctor diff a.json b.json         # attribute the cycle delta
//	rockdoctor critpath report.json       # causal critical path + slack table
//	rockdoctor whatif -scale noc=0.5,dram=0.5 report.json  # project a speedup
//	rockdoctor trace trace.json           # vload-pipeline latencies, frame occupancy
//	rockdoctor timeline telem.jsonl       # per-window bottleneck phases
//	rockdoctor watch http://HOST:PORT     # live sweep progress (rockbench -listen)
//	rockdoctor flight flight-*.json       # render a flight-recorder bundle
//
// explain prints the run's bottleneck classification (frame-limited,
// noc/inet-limited, dram-bandwidth-saturated, llc-miss-bound,
// barrier-bound, or issue-bound) with the counter evidence the rule tree
// fired on. diff divides the runtime delta between two reports into
// per-category CPI-stack contributions on the pacing role (warning when
// the two reports came from different simulator builds). critpath renders
// the causal profiler's output — critical-path cycles bucketed by resource
// class, the per-resource slack table, and the longest critical intervals —
// cross-checked against the counter classifier's verdict; whatif projects
// the cycle count under hypothetical resource scalings (-causal reports
// only; see DESIGN.md "Causal profiling"). trace mines a
// -trace event file for issue→fanout→frame-open→consume latency
// percentiles. timeline classifies every telemetry window and merges
// consecutive labels into phases, showing where the bottleneck moved.
// watch polls a live rocksim/rockbench -listen process's /debug/run view
// and renders sweep progress, the simulated-MIPS meter, and the ETA as a
// refreshing status line. flight renders the forensic bundle the flight
// recorder dumps when a run trips the watchdog, exhausts its wall budget,
// crashes, or receives SIGQUIT.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"rockcress/internal/analyze"
	"rockcress/internal/causal"
	"rockcress/internal/lifecycle"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// rockdoctor only reads artifacts, so commands finish fast; the signal
	// context still gives a clean 130 exit if one lands mid-read (a second
	// signal falls back to the OS default and kills the process).
	ctx, stop := lifecycle.WithSignals(context.Background())
	defer stop()
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "explain":
		err = explain(args)
	case "diff":
		err = diff(args)
	case "critpath":
		err = critpath(args)
	case "whatif":
		err = whatif(args)
	case "trace":
		err = traceCmd(args)
	case "timeline":
		err = timeline(args)
	case "watch":
		err = watch(ctx, args)
	case "flight":
		err = flightCmd(args)
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "rockdoctor: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err == nil {
		err = ctx.Err()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rockdoctor:", err)
		if lifecycle.Interrupted(err) {
			os.Exit(lifecycle.ExitCodeInterrupted)
		}
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `rockdoctor — bottleneck attribution for Rockcress runs

  rockdoctor explain report.json        classify one run and show the evidence
  rockdoctor diff a.json b.json         attribute the cycle delta between two runs
  rockdoctor critpath report.json       causal critical path, slack, cross-check
  rockdoctor whatif -scale k=v,... report.json
                                        project cycles under resource scalings
                                        (params: `+scaleParamList()+`)
  rockdoctor trace trace.json           vload-pipeline latencies and frame occupancy
  rockdoctor timeline telem.jsonl       time-resolved bottleneck phases
  rockdoctor watch http://HOST:PORT     live sweep progress from a -listen process
  rockdoctor flight flight-*.json       render a flight-recorder forensic bundle

Produce the inputs with rocksim -report/-trace/-telemetry or
rockbench -report/-telemetry; critpath and whatif need a report from a
-causal run; watch and flight read the live observability plane
(rocksim/rockbench -listen ADDR -flight DIR).
`)
}

func scaleParamList() string {
	return strings.Join(causal.ScaleKeys(), ", ")
}

func explain(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: rockdoctor explain report.json")
	}
	r, err := analyze.ReadReport(args[0])
	if err != nil {
		return err
	}
	analyze.Explain(os.Stdout, r)
	return nil
}

func diff(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: rockdoctor diff a.json b.json")
	}
	a, err := analyze.ReadReport(args[0])
	if err != nil {
		return err
	}
	b, err := analyze.ReadReport(args[1])
	if err != nil {
		return err
	}
	if !analyze.SameBuild(a.Build, b.Build) {
		fmt.Printf("WARNING: reports come from different simulator builds (%s vs %s); the delta may include simulator changes, not just configuration effects\n",
			buildLabel(a.Build), buildLabel(b.Build))
	}
	d := analyze.Diff(a, b)
	d.Render(os.Stdout)
	return nil
}

func buildLabel(b *analyze.BuildInfo) string {
	if b == nil || b.Revision == "" {
		return "unstamped"
	}
	rev := b.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if b.Dirty {
		rev += "+dirty"
	}
	return rev
}

func critpath(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: rockdoctor critpath report.json")
	}
	r, err := analyze.ReadReport(args[0])
	if err != nil {
		return err
	}
	return analyze.RenderCriticalPath(os.Stdout, r)
}

func whatif(args []string) error {
	fs := flag.NewFlagSet("whatif", flag.ContinueOnError)
	spec := fs.String("scale", "", "comma-separated resource scalings, e.g. noc=0.5,dram=0.5 (params: "+scaleParamList()+")")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *spec == "" || fs.NArg() != 1 {
		return fmt.Errorf("usage: rockdoctor whatif -scale k=v,... report.json")
	}
	r, err := analyze.ReadReport(fs.Arg(0))
	if err != nil {
		return err
	}
	return analyze.RenderWhatIf(os.Stdout, r, *spec)
}

func traceCmd(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: rockdoctor trace trace.json")
	}
	tf, err := analyze.ReadTraceFile(args[0])
	if err != nil {
		return err
	}
	st := analyze.AnalyzeTrace(tf.Events, tf.Dropped)
	st.Truncated = tf.Truncated
	st.Render(os.Stdout)
	return nil
}

func timeline(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: rockdoctor timeline telemetry.jsonl")
	}
	ws, truncated, err := analyze.ReadWindowsFile(args[0])
	if err != nil {
		return err
	}
	if len(ws) == 0 {
		return fmt.Errorf("%s: no telemetry windows", args[0])
	}
	if truncated {
		fmt.Println("WARNING: run was interrupted; this timeline covers a prefix of the run")
	}
	analyze.RenderTimeline(os.Stdout, analyze.Timeline(ws))
	return nil
}
