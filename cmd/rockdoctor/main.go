// Command rockdoctor interprets the artifacts a simulation leaves behind:
// per-run reports, windowed telemetry, and Perfetto event traces. It never
// runs a simulation itself — rocksim -report / rockbench -report produce
// the inputs; rockdoctor explains them.
//
// Usage:
//
//	rockdoctor explain report.json        # verdict + evidence + CPI stacks
//	rockdoctor diff a.json b.json         # attribute the cycle delta
//	rockdoctor trace trace.json           # vload-pipeline latencies, frame occupancy
//	rockdoctor timeline telem.jsonl       # per-window bottleneck phases
//	rockdoctor watch http://HOST:PORT     # live sweep progress (rockbench -listen)
//	rockdoctor flight flight-*.json       # render a flight-recorder bundle
//
// explain prints the run's bottleneck classification (frame-limited,
// noc/inet-limited, dram-bandwidth-saturated, llc-miss-bound,
// barrier-bound, or issue-bound) with the counter evidence the rule tree
// fired on. diff divides the runtime delta between two reports into
// per-category CPI-stack contributions on the pacing role. trace mines a
// -trace event file for issue→fanout→frame-open→consume latency
// percentiles. timeline classifies every telemetry window and merges
// consecutive labels into phases, showing where the bottleneck moved.
// watch polls a live rocksim/rockbench -listen process's /debug/run view
// and renders sweep progress, the simulated-MIPS meter, and the ETA as a
// refreshing status line. flight renders the forensic bundle the flight
// recorder dumps when a run trips the watchdog, exhausts its wall budget,
// crashes, or receives SIGQUIT.
package main

import (
	"context"
	"fmt"
	"os"

	"rockcress/internal/analyze"
	"rockcress/internal/lifecycle"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// rockdoctor only reads artifacts, so commands finish fast; the signal
	// context still gives a clean 130 exit if one lands mid-read (a second
	// signal falls back to the OS default and kills the process).
	ctx, stop := lifecycle.WithSignals(context.Background())
	defer stop()
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "explain":
		err = explain(args)
	case "diff":
		err = diff(args)
	case "trace":
		err = traceCmd(args)
	case "timeline":
		err = timeline(args)
	case "watch":
		err = watch(ctx, args)
	case "flight":
		err = flightCmd(args)
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "rockdoctor: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err == nil {
		err = ctx.Err()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rockdoctor:", err)
		if lifecycle.Interrupted(err) {
			os.Exit(lifecycle.ExitCodeInterrupted)
		}
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `rockdoctor — bottleneck attribution for Rockcress runs

  rockdoctor explain report.json        classify one run and show the evidence
  rockdoctor diff a.json b.json         attribute the cycle delta between two runs
  rockdoctor trace trace.json           vload-pipeline latencies and frame occupancy
  rockdoctor timeline telem.jsonl       time-resolved bottleneck phases
  rockdoctor watch http://HOST:PORT     live sweep progress from a -listen process
  rockdoctor flight flight-*.json       render a flight-recorder forensic bundle

Produce the inputs with rocksim -report/-trace/-telemetry or
rockbench -report/-telemetry; watch and flight read the live observability
plane (rocksim/rockbench -listen ADDR -flight DIR).
`)
}

func explain(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: rockdoctor explain report.json")
	}
	r, err := analyze.ReadReport(args[0])
	if err != nil {
		return err
	}
	analyze.Explain(os.Stdout, r)
	return nil
}

func diff(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: rockdoctor diff a.json b.json")
	}
	a, err := analyze.ReadReport(args[0])
	if err != nil {
		return err
	}
	b, err := analyze.ReadReport(args[1])
	if err != nil {
		return err
	}
	d := analyze.Diff(a, b)
	d.Render(os.Stdout)
	return nil
}

func traceCmd(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: rockdoctor trace trace.json")
	}
	tf, err := analyze.ReadTraceFile(args[0])
	if err != nil {
		return err
	}
	st := analyze.AnalyzeTrace(tf.Events, tf.Dropped)
	st.Truncated = tf.Truncated
	st.Render(os.Stdout)
	return nil
}

func timeline(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: rockdoctor timeline telemetry.jsonl")
	}
	ws, truncated, err := analyze.ReadWindowsFile(args[0])
	if err != nil {
		return err
	}
	if len(ws) == 0 {
		return fmt.Errorf("%s: no telemetry windows", args[0])
	}
	if truncated {
		fmt.Println("WARNING: run was interrupted; this timeline covers a prefix of the run")
	}
	analyze.RenderTimeline(os.Stdout, analyze.Timeline(ws))
	return nil
}
