// Command rockbench regenerates the paper's tables and figures on the
// Rockcress simulator.
//
// Usage:
//
//	rockbench -table 1a|1b|2|3
//	rockbench -fig 10|11|12|13|14|15|16|17a|17b|17c|bfs|fault|replay|netfault [-scale small|full] [-bench name,...]
//	rockbench -all [-scale small|full]
//	rockbench -check bench/baseline.json
//	rockbench -update-baseline bench/baseline.json [-scale tiny]
//
// Each figure's independent simulations run on a worker pool of -j
// goroutines (default GOMAXPROCS). The output — every cycle count, table
// row, and progress line, in order — is identical for any -j.
//
// Absolute cycle counts are the simulator's, not the paper's gem5 testbed;
// EXPERIMENTS.md records the shape comparison per figure.
//
// -telemetry DIR writes one cycle-windowed JSONL file per simulated run
// (window size -sample N) and -report DIR writes one canonical per-run
// report (rockdoctor's input) per run, neither changing any cycle count;
// -pprof FILE writes a CPU profile of the whole sweep.
//
// -listen ADDR serves the live observability plane over HTTP while the
// sweep runs: Prometheus metrics on /metrics, sweep progress and the
// simulated-MIPS meter on /debug/run (rockdoctor watch renders it), a
// per-tile stall heatmap and per-link NoC hop rates on /debug/machine, the
// flight recorder's rings on /debug/flight, and live pprof (CPU, heap,
// block, mutex, goroutine) under /debug/pprof/. -flight DIR arms the flight
// recorder's automatic forensic dumps: when a run trips the deadlock
// watchdog, exhausts its wall budget, or crashes (contained), a bundle of
// the most recent telemetry windows and rare-event notes is written there;
// SIGQUIT dumps one on demand without stopping the sweep. Neither flag
// changes any simulated cycle count.
//
// -check is the perf-regression gate: it re-runs every kernel x config the
// baseline file pins (at the baseline's own scale, ignoring -scale) and
// fails with per-run diff attribution unless every cycle count is
// bit-equal. -update-baseline re-records the file after an intentional
// performance change.
//
// Lifecycle: SIGINT/SIGTERM cancel the sweep cleanly (in-flight simulations
// abort at their next watchdog checkpoint, completed cells are kept, exit
// status 130); -timeout D bounds each simulation's wall-clock time;
// -journal FILE records every completed cell crash-safely, and -resume
// reloads it so a rerun skips the completed cells and produces final tables
// byte-identical to an uninterrupted run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"rockcress/internal/harness"
	"rockcress/internal/kernels"
	"rockcress/internal/lifecycle"
	"rockcress/internal/metrics"
	"rockcress/internal/trace"
)

// journalHint is printed on an interrupted exit so the user knows the sweep
// is resumable.
var journalHint string

func main() {
	var (
		tableName  = flag.String("table", "", "table to print: 1a, 1b, 2, 3")
		figName    = flag.String("fig", "", "figure to regenerate: 10, 11, 12, 13, 14, 15, 16, 17a, 17b, 17c, bfs, fault, replay, netfault")
		allFlag    = flag.Bool("all", false, "regenerate every table and figure")
		scaleName  = flag.String("scale", "small", "input scale: tiny, small, full")
		benchCSV   = flag.String("bench", "", "comma-separated benchmark subset")
		quiet      = flag.Bool("q", false, "suppress per-run progress lines")
		jobs       = flag.Int("j", runtime.GOMAXPROCS(0), "parallel simulations per figure sweep (results are identical for any value)")
		telemDir   = flag.String("telemetry", "", "write per-run cycle-windowed telemetry (JSONL) into this directory")
		sampleN    = flag.Int64("sample", trace.DefaultSampleEvery, "telemetry window size in cycles")
		reportDir  = flag.String("report", "", "write per-run reports (rockdoctor JSON) into this directory")
		checkPath  = flag.String("check", "", "perf gate: verify cycle counts against this baseline file and exit nonzero on drift")
		updatePath = flag.String("update-baseline", "", "re-record the baseline file at -scale")
		pprofOut   = flag.String("pprof", "", "write a CPU profile of the sweep to this file")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget per simulation (0 = unlimited); a run exceeding it fails its sweep cell")
		jrnlPath   = flag.String("journal", "", "record completed sweep cells crash-safely into this file")
		resume     = flag.Bool("resume", false, "reload -journal and skip its completed cells (final tables are byte-identical to an uninterrupted run)")
		listenAddr = flag.String("listen", "", "serve live introspection on this address (/metrics, /debug/run, /debug/machine, /debug/flight, /debug/build, /debug/pprof/); cycle counts are unchanged")
		flightDir  = flag.String("flight", "", "write flight-recorder bundles into this directory when a run dies badly (watchdog, wall budget, crash), on SIGQUIT, or on the first SIGINT")
		causalOn   = flag.Bool("causal", false, "record causal profiles (critical_path sections in -report files); cycle counts are bit-identical with or without it")
	)
	flag.Parse()

	// First SIGINT/SIGTERM cancels the sweep at the next watchdog
	// checkpoints; a second signal kills the process the OS way.
	ctx, stop := lifecycle.WithSignals(context.Background())
	defer stop()

	// The observability plane is opt-in: without -listen/-flight the sweep
	// carries no registry, no flight recorder, and no retain sampler.
	var plane *metrics.Plane
	if *listenAddr != "" || *flightDir != "" {
		plane = metrics.NewPlane(*flightDir)
		plane.OnDump(func(path string) {
			fmt.Fprintln(os.Stderr, "rockbench: flight bundle written:", path)
		})
		// SIGQUIT dumps a flight bundle and keeps the sweep running; the
		// first SIGINT dumps one on the way out (the sweep still cancels).
		stopQuit := metrics.DumpOnQuit(plane)
		defer stopQuit()
		stopInt := metrics.DumpOnInterrupt(plane)
		defer stopInt()
		if *listenAddr != "" {
			srv, err := metrics.Serve(*listenAddr, plane)
			if err != nil {
				fatal(err)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "# observability: http://%s (/metrics /debug/run /debug/machine /debug/flight /debug/build /debug/pprof/)\n", srv.Addr())
		}
	}

	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	scale, err := kernels.ParseScale(*scaleName)
	if err != nil {
		fatal(err)
	}
	var benches []string
	if *benchCSV != "" {
		benches = strings.Split(*benchCSV, ",")
	}

	// The journal pins the sweep definition: resuming under a different
	// selector or scale would silently skip the wrong cells, so the meta
	// check refuses it. Cell results are fsynced as they land; a crash or
	// interrupt anywhere leaves a replayable prefix.
	var (
		journal *lifecycle.Journal
		seed    []lifecycle.JournalEntry
	)
	if *resume && *jrnlPath == "" {
		fatal(errors.New("-resume requires -journal"))
	}
	if *jrnlPath != "" {
		meta := map[string]string{"scale": *scaleName, "bench": *benchCSV}
		if *resume {
			journal, seed, err = lifecycle.ResumeJournal(*jrnlPath, meta)
		} else {
			journal, err = lifecycle.CreateJournal(*jrnlPath, meta)
		}
		if err != nil {
			fatal(err)
		}
		// Close runs only on the clean-exit path (fatal skips defers, but
		// every Record is already fsynced); it surfaces any latched append
		// error so a silently unrecordable sweep cannot look resumable.
		defer func() {
			if cerr := journal.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "rockbench: journal:", cerr)
				os.Exit(1)
			}
		}()
		journalHint = fmt.Sprintf("journal saved: rerun with -journal %s -resume to continue", *jrnlPath)
	}

	newRunner := func(s kernels.Scale) *harness.Runner {
		r := harness.New(harness.Options{
			Scale: s, Out: os.Stdout, Verbose: !*quiet, Benches: benches, Jobs: *jobs,
			TelemetryDir: *telemDir, SampleEvery: *sampleN, ReportDir: *reportDir,
			Ctx: ctx, WallBudget: *timeout, Journal: journal, Obs: plane,
			Causal: *causalOn,
		})
		if len(seed) > 0 {
			n, err := r.SeedJournal(seed)
			if err != nil {
				fatal(err)
			}
			if !*quiet {
				fmt.Printf("# resumed %d completed cells from %s\n", n, *jrnlPath)
			}
		}
		return r
	}

	if *checkPath != "" {
		b, err := harness.ReadBaseline(*checkPath)
		if err != nil {
			fatal(err)
		}
		// The gate runs at the baseline's recorded scale, not -scale: the
		// pinned cycle counts mean nothing at any other input size.
		bscale, err := kernels.ParseScale(b.Scale)
		if err != nil {
			fatal(err)
		}
		if err := newRunner(bscale).Check(b, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *updatePath != "" {
		if err := newRunner(scale).WriteBaseline(*updatePath); err != nil {
			fatal(err)
		}
		fmt.Printf("baseline written: %s (%s scale)\n", *updatePath, scale)
		return
	}

	r := newRunner(scale)
	out := os.Stdout
	if *tableName != "" {
		if err := printTable(*tableName, scale); err != nil {
			fatal(err)
		}
		return
	}
	figs := map[string]func() error{
		"10":  func() error { return r.Fig10(out) },
		"11":  func() error { return r.Fig11(out) },
		"12":  func() error { return r.Fig12(out) },
		"13":  func() error { return r.Fig13(out) },
		"14":  func() error { return r.Fig14(out) },
		"15":  func() error { return r.Fig15(out) },
		"16":  func() error { return r.Fig16(out) },
		"17a": func() error { return r.Fig17a(out) },
		"17b": func() error { return r.Fig17b(out) },
		"17c": func() error { return r.Fig17c(out) },
		"bfs": func() error { return r.BFS(out) },
		// Not part of the paper: the fault-injection degradation curve and
		// the recovery-ladder comparison (ROADMAP robustness extensions).
		// Excluded from -all.
		"fault":    func() error { return r.FigFault(out) },
		"replay":   func() error { return r.FigReplay(out) },
		"netfault": func() error { return r.FigNetFault(out) },
	}
	if *figName != "" {
		fn, ok := figs[*figName]
		if !ok {
			fatal(fmt.Errorf("unknown figure %q", *figName))
		}
		if err := fn(); err != nil {
			fatal(err)
		}
		reportThroughput(r)
		return
	}
	if *allFlag {
		for _, name := range []string{"1a", "1b", "2", "3"} {
			if err := printTable(name, scale); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		for _, name := range []string{"10", "11", "12", "13", "14", "15", "16", "17a", "17b", "17c", "bfs"} {
			if err := figs[name](); err != nil {
				fatal(fmt.Errorf("figure %s: %w", name, err))
			}
			fmt.Println()
		}
		reportThroughput(r)
		return
	}
	flag.Usage()
}

// reportThroughput prints the sweep's simulated-cycles-per-wall-second
// meter. It goes to stderr: stdout carries the tables and cycle counts that
// baselines and golden comparisons consume, and this line is wall-clock
// dependent by definition.
func reportThroughput(r *harness.Runner) {
	cycles, wallNs := r.Throughput()
	if wallNs <= 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "# simulated %d cycles in %.2fs host time: %.2f Msim-cycles/s\n",
		cycles, float64(wallNs)/1e9, float64(cycles)*1e3/float64(wallNs))
}

func printTable(name string, scale kernels.Scale) error {
	switch name {
	case "1a":
		harness.Table1a(os.Stdout)
	case "1b":
		harness.Table1b(os.Stdout)
	case "2":
		harness.Table2(os.Stdout, scale)
	case "3":
		harness.Table3(os.Stdout)
	default:
		return fmt.Errorf("unknown table %q", name)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rockbench:", err)
	if lifecycle.Interrupted(err) {
		if journalHint != "" {
			fmt.Fprintln(os.Stderr, "rockbench:", journalHint)
		}
		os.Exit(lifecycle.ExitCodeInterrupted)
	}
	os.Exit(1)
}
