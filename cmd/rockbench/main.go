// Command rockbench regenerates the paper's tables and figures on the
// Rockcress simulator.
//
// Usage:
//
//	rockbench -table 1a|1b|2|3
//	rockbench -fig 10|11|12|13|14|15|16|17a|17b|17c|bfs|fault|replay [-scale small|full] [-bench name,...]
//	rockbench -all [-scale small|full]
//	rockbench -check bench/baseline.json
//	rockbench -update-baseline bench/baseline.json [-scale tiny]
//
// Each figure's independent simulations run on a worker pool of -j
// goroutines (default GOMAXPROCS). The output — every cycle count, table
// row, and progress line, in order — is identical for any -j.
//
// Absolute cycle counts are the simulator's, not the paper's gem5 testbed;
// EXPERIMENTS.md records the shape comparison per figure.
//
// -telemetry DIR writes one cycle-windowed JSONL file per simulated run
// (window size -sample N) and -report DIR writes one canonical per-run
// report (rockdoctor's input) per run, neither changing any cycle count;
// -pprof FILE writes a CPU profile of the whole sweep.
//
// -check is the perf-regression gate: it re-runs every kernel x config the
// baseline file pins (at the baseline's own scale, ignoring -scale) and
// fails with per-run diff attribution unless every cycle count is
// bit-equal. -update-baseline re-records the file after an intentional
// performance change.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"rockcress/internal/harness"
	"rockcress/internal/kernels"
	"rockcress/internal/trace"
)

func main() {
	var (
		tableName  = flag.String("table", "", "table to print: 1a, 1b, 2, 3")
		figName    = flag.String("fig", "", "figure to regenerate: 10, 11, 12, 13, 14, 15, 16, 17a, 17b, 17c, bfs, fault, replay")
		allFlag    = flag.Bool("all", false, "regenerate every table and figure")
		scaleName  = flag.String("scale", "small", "input scale: tiny, small, full")
		benchCSV   = flag.String("bench", "", "comma-separated benchmark subset")
		quiet      = flag.Bool("q", false, "suppress per-run progress lines")
		jobs       = flag.Int("j", runtime.GOMAXPROCS(0), "parallel simulations per figure sweep (results are identical for any value)")
		telemDir   = flag.String("telemetry", "", "write per-run cycle-windowed telemetry (JSONL) into this directory")
		sampleN    = flag.Int64("sample", trace.DefaultSampleEvery, "telemetry window size in cycles")
		reportDir  = flag.String("report", "", "write per-run reports (rockdoctor JSON) into this directory")
		checkPath  = flag.String("check", "", "perf gate: verify cycle counts against this baseline file and exit nonzero on drift")
		updatePath = flag.String("update-baseline", "", "re-record the baseline file at -scale")
		pprofOut   = flag.String("pprof", "", "write a CPU profile of the sweep to this file")
	)
	flag.Parse()

	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	scale, err := kernels.ParseScale(*scaleName)
	if err != nil {
		fatal(err)
	}
	var benches []string
	if *benchCSV != "" {
		benches = strings.Split(*benchCSV, ",")
	}
	newRunner := func(s kernels.Scale) *harness.Runner {
		return harness.New(harness.Options{
			Scale: s, Out: os.Stdout, Verbose: !*quiet, Benches: benches, Jobs: *jobs,
			TelemetryDir: *telemDir, SampleEvery: *sampleN, ReportDir: *reportDir,
		})
	}

	if *checkPath != "" {
		b, err := harness.ReadBaseline(*checkPath)
		if err != nil {
			fatal(err)
		}
		// The gate runs at the baseline's recorded scale, not -scale: the
		// pinned cycle counts mean nothing at any other input size.
		bscale, err := kernels.ParseScale(b.Scale)
		if err != nil {
			fatal(err)
		}
		if err := newRunner(bscale).Check(b, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if *updatePath != "" {
		if err := newRunner(scale).WriteBaseline(*updatePath); err != nil {
			fatal(err)
		}
		fmt.Printf("baseline written: %s (%s scale)\n", *updatePath, scale)
		return
	}

	r := newRunner(scale)
	out := os.Stdout
	if *tableName != "" {
		if err := printTable(*tableName, scale); err != nil {
			fatal(err)
		}
		return
	}
	figs := map[string]func() error{
		"10":  func() error { return r.Fig10(out) },
		"11":  func() error { return r.Fig11(out) },
		"12":  func() error { return r.Fig12(out) },
		"13":  func() error { return r.Fig13(out) },
		"14":  func() error { return r.Fig14(out) },
		"15":  func() error { return r.Fig15(out) },
		"16":  func() error { return r.Fig16(out) },
		"17a": func() error { return r.Fig17a(out) },
		"17b": func() error { return r.Fig17b(out) },
		"17c": func() error { return r.Fig17c(out) },
		"bfs": func() error { return r.BFS(out) },
		// Not part of the paper: the fault-injection degradation curve and
		// the recovery-ladder comparison (ROADMAP robustness extensions).
		// Excluded from -all.
		"fault":  func() error { return r.FigFault(out) },
		"replay": func() error { return r.FigReplay(out) },
	}
	if *figName != "" {
		fn, ok := figs[*figName]
		if !ok {
			fatal(fmt.Errorf("unknown figure %q", *figName))
		}
		if err := fn(); err != nil {
			fatal(err)
		}
		return
	}
	if *allFlag {
		for _, name := range []string{"1a", "1b", "2", "3"} {
			if err := printTable(name, scale); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
		for _, name := range []string{"10", "11", "12", "13", "14", "15", "16", "17a", "17b", "17c", "bfs"} {
			if err := figs[name](); err != nil {
				fatal(fmt.Errorf("figure %s: %w", name, err))
			}
			fmt.Println()
		}
		return
	}
	flag.Usage()
}

func printTable(name string, scale kernels.Scale) error {
	switch name {
	case "1a":
		harness.Table1a(os.Stdout)
	case "1b":
		harness.Table1b(os.Stdout)
	case "2":
		harness.Table2(os.Stdout, scale)
	case "3":
		harness.Table3(os.Stdout)
	default:
		return fmt.Errorf("unknown table %q", name)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rockbench:", err)
	os.Exit(1)
}
