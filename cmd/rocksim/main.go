// Command rocksim runs one benchmark under one Table 3 configuration on
// the Rockcress simulator and prints its statistics.
//
// Usage:
//
//	rocksim -bench gemm -config V4 [-scale small] [-v] [-j workers]
//	rocksim -bench mvt -config V4 -faults "seed=42;kill@3000:t12"
//
// -j spreads one simulation's per-cycle component ticks over a worker pool;
// cycle counts are bit-identical for any value. Setting ROCKTRACE (any
// non-empty value) traces barrier releases to stdout; setting it to a
// numeric address additionally watches accesses to that global word.
//
// Observability: -trace out.json writes a Chrome trace-event / Perfetto
// event trace (ring sized by -trace-buf; a warning reports overwritten
// events), -telemetry out.jsonl writes cycle-windowed counter deltas
// (window size -sample N), -report out.json writes the canonical per-run
// report with a bottleneck verdict (see rockdoctor), -prof prints the
// engine's per-stage wall-time self-profile, and -pprof file.pb.gz writes
// a CPU profile. -listen ADDR serves the live observability plane over HTTP
// (/metrics, /debug/run, /debug/machine, /debug/flight, /debug/pprof/) and
// -flight DIR arms automatic flight-recorder dumps on watchdog trips, wall
// budget expiry, contained crashes, and SIGQUIT. None of them change
// simulated cycle counts. A failed telemetry or trace write exits nonzero.
//
// Configurations are the Table 3 names (NV, NV_PF, PCV_PF, V4, V16,
// V4_PCV, V16_PCV, V4_LL_PCV, V16_LL, V16_LL_PCV) plus GPU. The -faults
// schedule syntax is documented in internal/fault (kill, drop, corrupt,
// stick, flip, panic events, plus the permanent-topology verbs cutlink,
// killrouter, killbank, and dramdegrade); the run degrades gracefully —
// rerouting around cut links and dead routers, failing LLC slices over to
// surviving banks — and reports what died.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"

	"rockcress/internal/analyze"
	"rockcress/internal/asm"
	"rockcress/internal/config"
	"rockcress/internal/fault"
	"rockcress/internal/kernels"
	"rockcress/internal/lifecycle"
	"rockcress/internal/metrics"
	"rockcress/internal/sim"
	"rockcress/internal/trace"
)

// failSink lets fatal flush a truncation-marked trace/telemetry artifact
// instead of leaving a torn or empty file behind an aborted run.
var failSink *trace.Sink

func main() {
	var (
		benchName = flag.String("bench", "gemm", "benchmark name (see rockbench -table 2)")
		cfgName   = flag.String("config", "NV", "Table 3 configuration name, or GPU")
		scaleName = flag.String("scale", "small", "input scale: tiny, small, full")
		maxCycles = flag.Int64("max-cycles", kernels.DefaultMaxCycles, "simulation budget")
		verbose   = flag.Bool("v", false, "print per-core CPI stack and energy split")
		dumpAsm   = flag.Bool("dump-asm", false, "print the built program's disassembly and exit")
		faultSpec = flag.String("faults", "", `fault schedule, e.g. "seed=42;kill@3000:t12;cutlink@2000:5>6;killbank@4000:b3"`)
		workers   = flag.Int("j", 1, "engine worker goroutines for one simulation (0 or 1 = serial; cycle counts are identical for any value)")
		traceOut  = flag.String("trace", "", "write a Chrome trace-event / Perfetto JSON event trace to this file")
		traceBuf  = flag.Int("trace-buf", trace.DefaultEventCap, "event-trace ring capacity; oldest events drop (with a warning) when exceeded")
		telemOut  = flag.String("telemetry", "", "write cycle-windowed telemetry (JSONL) to this file")
		reportOut = flag.String("report", "", "write the canonical per-run report (JSON, for rockdoctor) to this file")
		sampleN   = flag.Int64("sample", trace.DefaultSampleEvery, "telemetry window size in cycles")
		profEng   = flag.Bool("prof", false, "print the engine's per-stage wall-time self-profile")
		pprofOut  = flag.String("pprof", "", "write a CPU profile to this file")
		timeout   = flag.Duration("timeout", 0, "wall-clock budget for the run (0 = unlimited); exceeded runs fail with a diagnostic snapshot")
		listen    = flag.String("listen", "", "serve live introspection on this address (/metrics, /debug/run, /debug/machine, /debug/flight, /debug/build, /debug/pprof/); cycle counts are unchanged")
		flightDir = flag.String("flight", "", "write flight-recorder bundles into this directory when the run dies badly (watchdog, wall budget, crash), on SIGQUIT, or on the first SIGINT")
		causalOn  = flag.Bool("causal", false, "record the causal profile (critical-path buckets, slack, what-if projections); cycle counts are bit-identical with or without it")
	)
	flag.Parse()

	// SIGINT/SIGTERM cancel the run at its next watchdog checkpoint; the
	// trace/telemetry sink is still flushed, truncation-marked, on the way
	// out. A second signal kills the process immediately.
	ctx, stop := lifecycle.WithSignals(context.Background())
	defer stop()

	opts := kernels.ExecOpts{
		MaxCycles:  *maxCycles,
		Workers:    *workers,
		Ctx:        ctx,
		WallBudget: *timeout,
		Causal:     *causalOn,
	}
	// The observability plane is opt-in: without -listen/-flight the run
	// carries no registry, no flight recorder, and no retain sampler.
	var plane *metrics.Plane
	if *listen != "" || *flightDir != "" {
		plane = metrics.NewPlane(*flightDir)
		plane.OnDump(func(path string) {
			fmt.Fprintln(os.Stderr, "rocksim: flight bundle written:", path)
		})
		stopQuit := metrics.DumpOnQuit(plane)
		defer stopQuit()
		// The first SIGINT dumps a bundle too: the forensic record of a run
		// the user aborted, not just of runs that died on their own.
		stopInt := metrics.DumpOnInterrupt(plane)
		defer stopInt()
		if *listen != "" {
			srv, err := metrics.Serve(*listen, plane)
			if err != nil {
				fatal(err)
			}
			defer srv.Close()
			fmt.Fprintf(os.Stderr, "# observability: http://%s (/metrics /debug/run /debug/machine /debug/flight /debug/build /debug/pprof/)\n", srv.Addr())
		}
		opts.Obs = plane
	}
	// ROCKTRACE: any non-empty value traces barrier releases; a parseable
	// numeric value additionally watches that global word address. Parsed
	// once here — no simulator package reads the environment.
	if env := os.Getenv("ROCKTRACE"); env != "" {
		opts.TraceBarriers = true
		if addr, err := strconv.ParseUint(env, 0, 32); err == nil {
			opts.WatchAddr = uint32(addr)
		}
	}
	var sink *trace.Sink
	if *traceOut != "" || *telemOut != "" || plane != nil {
		cfg := trace.Config{SampleEvery: *sampleN, EventCap: *traceBuf}
		if fl := plane.Flight(); fl != nil {
			// Feed the flight recorder's window ring; one run at a time, so
			// the ambient run key set by Begin attributes windows correctly.
			cfg.Retain = fl.Retain
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			cfg.EventsTo = f
		}
		if *telemOut != "" {
			f, err := os.Create(*telemOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			cfg.SampleTo = f
		}
		sink = trace.NewSink(cfg)
		opts.Trace = sink
		failSink = sink
	}
	var prof *sim.Prof
	if *profEng {
		prof = &sim.Prof{}
		opts.Prof = prof
	}
	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	scale, err := kernels.ParseScale(*scaleName)
	if err != nil {
		fatal(err)
	}
	bench, err := kernels.Get(*benchName)
	if err != nil {
		fatal(err)
	}
	var sw config.Software
	if *cfgName == "GPU" {
		if *reportOut != "" {
			fatal(fmt.Errorf("-report needs machine counters; the GPU model has none"))
		}
		sw = kernels.GPUSoftware()
	} else if sw, err = config.Preset(*cfgName); err != nil {
		fatal(err)
	}
	if *dumpAsm {
		if err := dumpProgram(bench, scale, sw); err != nil {
			fatal(err)
		}
		return
	}
	if *faultSpec != "" {
		plan, err := fault.Parse(*faultSpec)
		if err != nil {
			fatal(err)
		}
		res := runFaulted(bench, scale, sw, opts, plan, *verbose)
		finish(*reportOut, res, *scaleName, sink, prof)
		return
	}
	res, err := kernels.ExecuteOpts(bench, bench.Defaults(scale), sw, config.ManycoreDefault(), opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s / %s (%s scale)\n", res.Bench, res.Config, scale)
	if res.GPU != nil {
		g := res.GPU
		fmt.Printf("cycles: %d\nwavefronts: %d\ncompute ops: %d loads: %d stores: %d\n",
			g.Cycles, g.Wavefronts, g.ComputeOps, g.LoadOps, g.StoreOps)
		fmt.Printf("lines: %d (tcp %d, tcc %d, llc %d, dram %d)\n",
			g.Lines, g.TCPHits, g.TCCHits, g.LLCHits, g.DramLines)
		return
	}
	fmt.Print(res.Stats.Summary())
	fmt.Printf("result check: passed (vs serial reference)\n")
	if *verbose {
		fmt.Printf("energy: %s\n", res.Energy)
		fmt.Printf("vloads: %d microthreads: %d remote stores: %d\n",
			sumVloads(res), sumMts(res), res.Stats.RemoteStores)
	}
	finish(*reportOut, res, *scaleName, sink, prof)
}

// finish emits the per-run report, flushes the observability sink (warning
// when the event ring overwrote anything), and prints the engine
// self-profile. Any report or flush failure exits nonzero: a silently
// truncated artifact would poison whatever reads it later. fatal paths
// flush too, but truncation-marked (see fatal), so an aborted run leaves a
// valid, honestly-labeled partial artifact rather than a torn file.
func finish(reportPath string, res *kernels.Result, scaleName string, sink *trace.Sink, prof *sim.Prof) {
	failed := false
	var rep *analyze.Report
	if reportPath != "" || res.Causal != nil {
		rep = analyze.New(analyze.Meta{Bench: res.Bench, Config: res.Config, Scale: scaleName},
			res.Stats, res.Groups, res.HW)
		rep.CriticalPath = res.Causal
		rep.Build = analyze.CurrentBuild()
	}
	if res.Causal != nil {
		fmt.Println()
		if err := analyze.RenderCriticalPath(os.Stdout, rep); err != nil {
			fmt.Fprintln(os.Stderr, "rocksim:", err)
			failed = true
		}
	}
	if reportPath != "" {
		if err := rep.WriteFile(reportPath); err != nil {
			fmt.Fprintln(os.Stderr, "rocksim:", err)
			failed = true
		} else {
			fmt.Printf("bottleneck: %s (report: %s)\n", rep.Bottleneck.Label, reportPath)
		}
	}
	if rec := sink.Recorder(); rec != nil {
		if d := rec.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr,
				"rocksim: warning: event ring overwrote %d events; raise -trace-buf (now %d) to keep the whole run\n",
				d, rec.Len())
		}
	}
	if err := sink.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "rocksim:", err)
		failed = true
	}
	if prof != nil {
		fmt.Print(prof.String())
	}
	if failed {
		os.Exit(1)
	}
}

// runFaulted runs the benchmark under a fault schedule via the graceful
// degradation harness and prints the final statistics plus what it cost.
func runFaulted(bench kernels.Benchmark, scale kernels.Scale, sw config.Software,
	opts kernels.ExecOpts, plan *fault.Plan, verbose bool) *kernels.Result {
	fr, err := kernels.ExecuteWithFaultsOpts(bench, bench.Defaults(scale), sw,
		config.ManycoreDefault(), plan, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s / %s (%s scale, faults: %s)\n", fr.Result.Bench, fr.Result.Config, scale, plan)
	fmt.Print(fr.Result.Stats.Summary())
	fmt.Printf("result check: passed (vs serial reference)\n")
	if fr.Report != nil {
		fmt.Printf("faults: %s\n", fr.Report)
	}
	fmt.Printf("attempts: %d  total cycles incl. aborted attempts: %d\n", fr.Attempts, fr.TotalCycles)
	if fr.MIMDFallback {
		fmt.Println("vector groups could not re-form: finished in MIMD fallback")
	}
	if verbose {
		fmt.Printf("energy: %s\n", fr.Result.Energy)
	}
	return fr.Result
}

// dumpProgram builds the benchmark's program for the configuration and
// prints its assembly (what the paper's compiler pipeline would emit).
func dumpProgram(bench kernels.Benchmark, scale kernels.Scale, sw config.Software) error {
	p := bench.Defaults(scale)
	img, err := bench.Prepare(p)
	if err != nil {
		return err
	}
	hw := sw.Apply(config.ManycoreDefault())
	groups, err := kernels.GroupsFor(sw, hw)
	if err != nil {
		return err
	}
	ctx := kernels.NewCtx(p, img, sw, hw, groups)
	if err := bench.Build(ctx); err != nil {
		return err
	}
	prog, err := ctx.B.Build()
	if err != nil {
		return err
	}
	fmt.Printf("# %s / %s: %d instructions\n", bench.Info().Name, sw.Name, len(prog.Code))
	fmt.Print(asm.Disassemble(prog))
	return nil
}

func sumVloads(res *kernels.Result) int64 {
	var t int64
	for i := range res.Stats.Cores {
		t += res.Stats.Cores[i].VloadsIssued
	}
	return t
}

func sumMts(res *kernels.Result) int64 {
	var t int64
	for i := range res.Stats.Cores {
		t += res.Stats.Cores[i].Microthreads
	}
	return t
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rocksim:", err)
	if failSink != nil {
		// The machine's own flush already marked truncation for errors inside
		// a run; marking again here (idempotent) also covers failures before
		// or between runs, so every aborted artifact carries the marker.
		if rec := failSink.Recorder(); rec != nil {
			rec.MarkTruncated()
		}
		if smp := failSink.Sampler(); smp != nil {
			smp.MarkTruncated()
		}
		if cerr := failSink.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "rocksim:", cerr)
		}
	}
	if lifecycle.Interrupted(err) {
		os.Exit(lifecycle.ExitCodeInterrupted)
	}
	os.Exit(1)
}
