// Benchmarks that regenerate the paper's tables and figures (one bench per
// table/figure group, at tiny scale so `go test -bench=.` stays tractable;
// cmd/rockbench runs the real sizes), plus the ablation studies DESIGN.md
// calls out and microbenchmarks of the simulator itself.
package rockcress_test

import (
	"fmt"
	"io"
	"testing"

	"rockcress/internal/config"
	"rockcress/internal/harness"
	"rockcress/internal/kernels"
)

// figBenches keeps the per-iteration cost of figure benchmarks bounded: a
// representative slice of the suite covering dense, column-access,
// stencil, and irregular-ish behaviour.
var figBenches = []string{"gemm", "mvt", "2dconv", "gesummv"}

func newRunner(benches []string) *harness.Runner {
	return harness.New(harness.Options{
		Scale: kernels.Tiny, Out: io.Discard, Benches: benches,
	})
}

func runFig(b *testing.B, fn func(*harness.Runner, io.Writer) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r := newRunner(figBenches) // fresh runner: no cross-iteration cache
		if err := fn(r, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10 regenerates the headline speedup/I-cache/energy figure.
func BenchmarkFig10(b *testing.B) {
	runFig(b, func(r *harness.Runner, w io.Writer) error { return r.Fig10(w) })
}

// BenchmarkFig11 regenerates the core-count scalability figure.
func BenchmarkFig11(b *testing.B) {
	runFig(b, func(r *harness.Runner, w io.Writer) error { return r.Fig11(w) })
}

// BenchmarkFig12 regenerates the CPI stacks across manycore sizes.
func BenchmarkFig12(b *testing.B) {
	runFig(b, func(r *harness.Runner, w io.Writer) error { return r.Fig12(w) })
}

// BenchmarkFig13 regenerates the DRAM-bandwidth CPI study.
func BenchmarkFig13(b *testing.B) {
	runFig(b, func(r *harness.Runner, w io.Writer) error { return r.Fig13(w) })
}

// BenchmarkFig14 regenerates the SIMD + GPU comparison.
func BenchmarkFig14(b *testing.B) {
	runFig(b, func(r *harness.Runner, w io.Writer) error { return r.Fig14(w) })
}

// BenchmarkFig15 regenerates the inet stall characterization.
func BenchmarkFig15(b *testing.B) {
	runFig(b, func(r *harness.Runner, w io.Writer) error { return r.Fig15(w) })
}

// BenchmarkFig16 regenerates the vector-length / long-line study.
func BenchmarkFig16(b *testing.B) {
	runFig(b, func(r *harness.Runner, w io.Writer) error { return r.Fig16(w) })
}

// BenchmarkFig17 regenerates the memory-system sensitivity studies.
func BenchmarkFig17(b *testing.B) {
	runFig(b, func(r *harness.Runner, w io.Writer) error {
		if err := r.Fig17a(w); err != nil {
			return err
		}
		if err := r.Fig17b(w); err != nil {
			return err
		}
		return r.Fig17c(w)
	})
}

// BenchmarkBFS regenerates the §6.6 irregular-workload comparison.
func BenchmarkBFS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner(nil)
		if err := r.BFS(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTables prints Tables 1a/1b/2/3 (static parameter tables).
func BenchmarkTables(b *testing.B) {
	for i := 0; i < b.N; i++ {
		harness.Table1a(io.Discard)
		harness.Table1b(io.Discard)
		harness.Table2(io.Discard, kernels.Tiny)
		harness.Table3(io.Discard)
	}
}

// --- ablations (DESIGN.md: design choices under test) ---

func runAblation(b *testing.B, benchName, cfgName string, mod func(*config.Manycore)) int64 {
	b.Helper()
	bench, err := kernels.Get(benchName)
	if err != nil {
		b.Fatal(err)
	}
	sw, err := config.Preset(cfgName)
	if err != nil {
		b.Fatal(err)
	}
	hw := config.ManycoreDefault()
	if mod != nil {
		mod(&hw)
	}
	res, err := kernels.Execute(bench, bench.Defaults(kernels.Tiny), sw, hw, 0)
	if err != nil {
		b.Fatal(err)
	}
	return res.Cycles()
}

// BenchmarkAblationFrames sweeps the DAE depth (hardware frame counters):
// fewer counters curtail the scalar core's runahead (paper §3.3: "more
// counters let the DAE scheme run farther ahead"). Two counters are below
// what the §4.2 bound needs for these microthreads (the ahead offset goes
// negative), so the sweep starts at three.
func BenchmarkAblationFrames(b *testing.B) {
	for _, counters := range []int{3, 4, 5, 8} {
		counters := counters
		b.Run(fmt.Sprintf("counters=%d", counters), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				cycles = runAblation(b, "mvt", "V4", func(c *config.Manycore) {
					c.FrameCounters = counters
				})
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkAblationInetQueue sweeps the inet queue depth, the term that
// dominates the implicit synchronization bound of §4.2.
func BenchmarkAblationInetQueue(b *testing.B) {
	for _, q := range []int{1, 2, 4} {
		q := q
		b.Run(fmt.Sprintf("qinet=%d", q), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				cycles = runAblation(b, "2dconv", "V4", func(c *config.Manycore) {
					c.InetQueueEntries = q
				})
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkAblationLoadQueue sweeps the load-queue entries, the MIMD
// baseline's only source of memory-level parallelism.
func BenchmarkAblationLoadQueue(b *testing.B) {
	for _, lq := range []int{1, 2, 4, 8} {
		lq := lq
		b.Run(fmt.Sprintf("lq=%d", lq), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				cycles = runAblation(b, "gemm", "NV", func(c *config.Manycore) {
					c.LoadQueueEntries = lq
				})
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkAblationNetWidth sweeps the on-chip network width (Fig 17c's
// knob) on a single benchmark.
func BenchmarkAblationNetWidth(b *testing.B) {
	for _, nw := range []int{1, 2, 4} {
		nw := nw
		b.Run(fmt.Sprintf("nw=%d", nw), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				cycles = runAblation(b, "syrk", "V4", func(c *config.Manycore) {
					c.NetWidthWords = nw
				})
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// --- simulator microbenchmarks ---

// BenchmarkSimThroughput measures host time per simulated cycle on a busy
// 64-core machine (the figure-regeneration budget driver).
func BenchmarkSimThroughput(b *testing.B) {
	bench, err := kernels.Get("mvt")
	if err != nil {
		b.Fatal(err)
	}
	sw, _ := config.Preset("NV")
	var simCycles int64
	for i := 0; i < b.N; i++ {
		res, err := kernels.Execute(bench, bench.Defaults(kernels.Small), sw, config.ManycoreDefault(), 0)
		if err != nil {
			b.Fatal(err)
		}
		simCycles += res.Cycles()
	}
	b.ReportMetric(float64(simCycles)/float64(b.Elapsed().Seconds())/1e6, "Msim-cycles/s")
}

// BenchmarkEngineMIPS measures raw engine throughput: simulated cycles per
// host second of the run loop alone (stats.WallNs), excluding kernel build
// and machine construction — the number the engine-overhaul work moves.
// Run with -benchmem: steady-state allocs/op is part of the contract.
func BenchmarkEngineMIPS(b *testing.B) {
	bench, err := kernels.Get("mvt")
	if err != nil {
		b.Fatal(err)
	}
	sw, _ := config.Preset("NV")
	b.ReportAllocs()
	var simCycles, wallNs int64
	for i := 0; i < b.N; i++ {
		res, err := kernels.Execute(bench, bench.Defaults(kernels.Small), sw, config.ManycoreDefault(), 0)
		if err != nil {
			b.Fatal(err)
		}
		simCycles += res.Stats.Cycles
		wallNs += res.Stats.WallNs
	}
	if wallNs > 0 {
		b.ReportMetric(float64(simCycles)*1e3/float64(wallNs), "Msim-cycles/s")
	}
}
